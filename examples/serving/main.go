// Serving demonstrates the full production topology in one process: build
// a view artifact once, stand up the saphyrad serving stack on a loopback
// listener, and drive it as an HTTP client — subset ranking with the
// deterministic result cache, the precomputed top-k index, and an atomic
// hot reload, all with bitwise-reproducible scores.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"saphyra"
	"saphyra/internal/serve"
)

func main() {
	// Build once: a synthetic social network persisted as a view artifact —
	// in production this is `saphyra -graph net.txt -save-view net.sbcv`.
	g := saphyra.Generate.PowerLawCluster(3000, 4, 0.2, 11)
	dir, err := os.MkdirTemp("", "saphyra-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	viewPath := filepath.Join(dir, "net.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(viewPath)
	fmt.Printf("built view: %d nodes, %d edges, %d bytes on disk\n",
		g.NumNodes(), g.NumEdges(), st.Size())

	// Serve many: the saphyrad stack (cmd/saphyrad wires the same package
	// to flags and signals) on an ephemeral loopback port.
	srv, err := serve.New(viewPath, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("saphyrad serving on %s (generation %d)\n\n", base, srv.Generation())

	// A client ranking the same subset twice: the second answer comes from
	// the deterministic cache — same bits, no computation.
	req := serve.RankRequest{
		Method:  "saphyra",
		Targets: []int64{17, 99, 1024, 2048},
		Eps:     0.05, Delta: 0.01, Seed: 7,
	}
	first := postRank(base, req)
	second := postRank(base, req)
	fmt.Println("POST /v1/rank, method=saphyra, 4 targets:")
	for i := range first.Nodes {
		fmt.Printf("  rank %d  node %-5d score %.6g\n", first.Ranks[i], first.Nodes[i], first.Scores[i])
	}
	fmt.Printf("first:  cached=%v samples=%d\n", first.Cached, first.Samples)
	fmt.Printf("second: cached=%v identical=%v\n\n", second.Cached, identical(first, second))

	// The top-k index was precomputed at load time for every method.
	for _, method := range []string{"saphyra", "kpath", "closeness"} {
		top := getJSON[serve.RankResponse](base + "/v1/topk?method=" + method + "&k=3")
		fmt.Printf("GET /v1/topk method=%-9s (cached=%v):", method, top.Cached)
		for i := range top.Nodes {
			fmt.Printf("  #%d node %d (%.4g)", top.Ranks[i], top.Nodes[i], top.Scores[i])
		}
		fmt.Println()
	}

	// Hot reload: remap the artifact under the next generation. In-flight
	// queries would drain on the old mapping; new ones see generation 2 —
	// and, the file being unchanged, bitwise-identical scores.
	resp, err := http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	third := postRank(base, req)
	fmt.Printf("\nafter POST /admin/reload: generation %d, cached=%v (keys carry the generation), identical=%v\n",
		third.Generation, third.Cached, identical(first, third))

	// Per-request deadline: a Timeout-Ms header bounds the compute time.
	// An impossible budget (1 ms) on an uncached query returns 504 — the
	// computation is canceled at its next checkpoint and the admission slot
	// freed; nothing partial is ever cached.
	hard := serve.RankRequest{
		Method:  "saphyra",
		Targets: []int64{5, 55, 555},
		Eps:     0.005, Delta: 0.01, Seed: 404, // tight eps: a real computation
	}
	body, _ := json.Marshal(hard)
	hreq, _ := http.NewRequest("POST", base+"/v1/rank", bytes.NewReader(body))
	hreq.Header.Set("Timeout-Ms", "1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		log.Fatal(err)
	}
	hresp.Body.Close()
	fmt.Printf("\nPOST /v1/rank with Timeout-Ms: 1  ->  %s (deadline-exceeded compute is canceled, never partial)\n", hresp.Status)

	status := getJSON[serve.Statusz](base + "/statusz")
	fmt.Printf("statusz: gen=%d cache{hits=%d misses=%d} requests{rank=%d topk=%d deadline=%d}\n",
		status.Generation, status.Cache.Hits, status.Cache.Misses,
		status.Requests.Rank, status.Requests.TopK, status.Requests.DeadlineExceeded)

	// The same counters in Prometheus text format, ready to scrape.
	mresp, err := http.Get(base + "/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\nGET /metricsz (excerpt):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "saphyra_requests_total") ||
			strings.HasPrefix(line, "saphyra_request_errors_total{reason=\"deadline\"}") ||
			strings.HasPrefix(line, "saphyra_generation") {
			fmt.Println("  " + line)
		}
	}
}

func postRank(base string, req serve.RankRequest) *serve.RankResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("rank: status %s", resp.Status)
	}
	var out serve.RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return &out
}

func getJSON[T any](url string) *T {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %s", url, resp.Status)
	}
	out := new(T)
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
	return out
}

func identical(a, b *serve.RankResponse) bool {
	if len(a.Scores) != len(b.Scores) {
		return false
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			return false
		}
	}
	return true
}
