package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment

0 1
1 2
2 0 17.5 extra fields ignored
`
	g, orig, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.NumNodes(), g.NumEdges())
	}
	if len(orig) != 3 {
		t.Fatalf("len(orig) = %d", len(orig))
	}
}

func TestReadEdgeListRemapsSparseIDs(t *testing.T) {
	in := "1000 7\n7 99999\n"
	g, orig, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("n = %d, want 3 (compacted)", g.NumNodes())
	}
	want := []int64{1000, 7, 99999}
	for i, w := range want {
		if orig[i] != w {
			t.Errorf("orig[%d] = %d, want %d", i, orig[i], w)
		}
	}
	// node 1 is raw id 7, which connects to both others
	if g.Degree(1) != 2 {
		t.Errorf("degree of raw id 7 = %d, want 2", g.Degree(1))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"one field", "42\n"},
		{"bad source", "x 1\n"},
		{"bad target", "1 y\n"},
		{"negative", "-1 2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := ReadEdgeList(strings.NewReader(c.in)); err == nil {
				t.Errorf("want error for %q", c.in)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := BarabasiAlbert(80, 3, 21)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: (%d,%d) vs (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := Cycle(10)
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 10 {
		t.Errorf("m = %d, want 10", g2.NumEdges())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadEdgeList("/does/not/exist"); err == nil {
		t.Error("want error for missing file")
	}
}
