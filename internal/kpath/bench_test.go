package kpath

import (
	"context"

	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// benchGraph matches the sampling-engine benchmark reference (see
// internal/core): a preferential-attachment graph of social-network shape.
func benchGraph() *graph.Graph {
	return graph.BarabasiAlbert(4000, 3, 42)
}

func benchTargets(g *graph.Graph, n int) []graph.Node {
	targets := make([]graph.Node, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, graph.Node((int64(i)*2_654_435_761+7)%int64(g.NumNodes())))
	}
	return targets
}

var benchOpt = Options{K: 4, Epsilon: 0.1, Delta: 0.1, Seed: 7, Workers: 4}

// BenchmarkKPathPartitioned measures the partitioned estimator end to end
// (exact closed-form phase + virtual-worker walk sampling) on the raw
// graph — the row to compare against BENCH_sampling.json history when the
// engine changes.
func BenchmarkKPathPartitioned(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimatePartitioned(context.Background(), g, targets, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKPathPartitionedView is BenchmarkKPathPartitioned served from
// the shared BlockCSR view (the build-once/serve-many path); the view build
// is outside the timed loop, as it is in a serving process.
func BenchmarkKPathPartitionedView(b *testing.B) {
	g := benchGraph()
	d := bicomp.Decompose(g)
	view := bicomp.NewBlockCSR(d, bicomp.NewOutReach(d))
	targets := benchTargets(g, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimatePartitionedView(context.Background(), view, targets, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKPathWalks isolates the sampler hot loop: one stream drawing
// batches of walks, no framework overhead.
func BenchmarkKPathWalks(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 100)
	nodes, aIndex, err := targetIndex(g, targets, &Options{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	s := newWalkSampler(g, aIndex, 2, 4, 1)
	hits := make([]int64, len(nodes))
	b.ReportAllocs()
	b.ResetTimer()
	s.DrawBatch(int64(b.N), hits)
}
