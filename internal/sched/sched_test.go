package sched

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSplit(t *testing.T) {
	q := Split(10, 4, nil)
	want := []int64{3, 3, 2, 2}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("Split(10,4) = %v, want %v", q, want)
		}
	}
	var sum int64
	for _, v := range Split(1<<20+3, 7, nil) {
		sum += v
	}
	if sum != 1<<20+3 {
		t.Fatalf("Split quotas sum to %d", sum)
	}
	// Reuse: a capacious buffer must be reused, not reallocated.
	buf := make([]int64, 8)
	q = Split(5, 3, buf)
	if &q[0] != &buf[0] {
		t.Error("Split did not reuse the provided buffer")
	}
}

func TestBoundsCoverAndBalance(t *testing.T) {
	cost := make([]float64, 100)
	for i := range cost {
		cost[i] = float64(1 + i%7)
	}
	for _, chunks := range []int{1, 2, 3, 8, 64, 100} {
		b := Bounds(cost, chunks, nil)
		if len(b) != chunks+1 || b[0] != 0 || b[chunks] != len(cost) {
			t.Fatalf("chunks=%d: bad bounds %v", chunks, b)
		}
		for c := 0; c < chunks; c++ {
			if b[c] > b[c+1] {
				t.Fatalf("chunks=%d: non-monotone bounds at %d in %v", chunks, c, b)
			}
		}
	}
}

func TestBoundsSkewedNoPrefixCapture(t *testing.T) {
	// One item dominating the mass must not capture a prefix of chunks:
	// chunk c never starts before item c, so later items still spread out.
	cost := []float64{1e12, 1, 1, 1, 1, 1, 1, 1}
	b := Bounds(cost, 4, nil)
	for c := 0; c <= 4; c++ {
		if b[c] < min(c, len(cost)) {
			t.Fatalf("chunk %d starts at %d in %v", c, b[c], b)
		}
	}
	if b[1] != 1 {
		t.Fatalf("dominant item should fill chunk 0 alone: %v", b)
	}
}

func TestBoundsDeterministic(t *testing.T) {
	cost := make([]float64, 1000)
	for i := range cost {
		cost[i] = math.Abs(math.Sin(float64(i))) * 100
	}
	a := Bounds(cost, 64, nil)
	b := Bounds(cost, 64, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bounds not deterministic")
		}
	}
}

func TestDoCoversAllChunksOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const chunks = 100
		var hits [chunks]atomic.Int32
		Do(chunks, workers, func(c int) { hits[c].Add(1) })
		for c := range hits {
			if got := hits[c].Load(); got != 1 {
				t.Fatalf("workers=%d: chunk %d ran %d times", workers, c, got)
			}
		}
	}
}

func TestDoWithBracketsGoroutines(t *testing.T) {
	var mu sync.Mutex
	acquired, released := 0, 0
	DoWith(50, 4,
		func() int { mu.Lock(); acquired++; mu.Unlock(); return 0 },
		func(int) { mu.Lock(); released++; mu.Unlock() },
		func(_ int, c int) {})
	if acquired != released {
		t.Fatalf("acquire/release mismatch: %d vs %d", acquired, released)
	}
	if acquired < 1 || acquired > 4 {
		t.Fatalf("acquired %d resources for 4 workers", acquired)
	}
}

func TestDoSequentialInOrder(t *testing.T) {
	var order []int
	Do(5, 1, func(c int) { order = append(order, c) })
	for i, c := range order {
		if c != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}

func TestEpochWrapClears(t *testing.T) {
	marks := make([]int32, 4)
	e := NewEpoch(marks)
	ep := e.Next()
	if ep != 1 {
		t.Fatalf("first epoch = %d, want 1", ep)
	}
	marks[2] = ep
	e.cur = math.MaxInt32 // force wrap on the next call
	ep = e.Next()
	if ep != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", ep)
	}
	if marks[2] != 0 {
		t.Error("wrap did not clear registered marks")
	}
}

func TestBudgetGrantBounds(t *testing.T) {
	b := NewBudget(8, 3)
	if b.PerCall() != 3 {
		t.Fatalf("PerCall = %d, want 3", b.PerCall())
	}
	if got := b.Acquire(0); got != 3 { // want<=0 means "per-call max"
		t.Fatalf("Acquire(0) = %d, want 3", got)
	}
	if got := b.Acquire(10); got != 3 { // clamped to perCall
		t.Fatalf("Acquire(10) = %d, want 3", got)
	}
	if got := b.Acquire(1); got != 1 {
		t.Fatalf("Acquire(1) = %d, want 1", got)
	}
	// 7 of 8 slots held: the next caller gets the single leftover, not 3.
	if got := b.Acquire(3); got != 1 {
		t.Fatalf("Acquire(3) with one slot free = %d, want 1", got)
	}
	b.Release(3 + 3 + 1 + 1)
}

func TestBudgetClamps(t *testing.T) {
	b := NewBudget(0, 99) // degenerate config still yields a working pool
	if b.PerCall() != 1 {
		t.Fatalf("PerCall = %d, want 1", b.PerCall())
	}
	got := b.Acquire(5)
	if got != 1 {
		t.Fatalf("Acquire = %d, want 1", got)
	}
	b.Release(got)
}

// TestBudgetConcurrentNeverExceedsTotal runs many concurrent acquires (use
// -race) and checks the in-use slot count never exceeds the pool size and
// every caller is eventually served (no deadlock, grants >= 1).
func TestBudgetConcurrentNeverExceedsTotal(t *testing.T) {
	const total, perCall = 4, 2
	b := NewBudget(total, perCall)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := b.Acquire(1 + (g+i)%4)
				if got < 1 || got > perCall {
					t.Errorf("grant %d outside [1,%d]", got, perCall)
				}
				now := inUse.Add(int64(got))
				for {
					p := peak.Load()
					if now <= p || peak.CompareAndSwap(p, now) {
						break
					}
				}
				inUse.Add(-int64(got))
				b.Release(got)
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > total {
		t.Fatalf("peak in-use %d exceeds total %d", p, total)
	}
	if inUse.Load() != 0 {
		t.Fatalf("slots leaked: %d still in use", inUse.Load())
	}
}

// TestDoCtxPreCanceled: a context that is already done runs no chunks and
// reports the cause.
func TestDoCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	if err := DoCtx(ctx, 8, 4, func(c int) { ran++ }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d chunks ran under a pre-canceled ctx", ran)
	}
}

// TestDoCtxBackgroundRunsAll: the nil-error path is exactly Do.
func TestDoCtxBackgroundRunsAll(t *testing.T) {
	var ran [16]atomic.Int64
	if err := DoCtx(context.Background(), 16, 4, func(c int) { ran[c].Add(1) }); err != nil {
		t.Fatal(err)
	}
	for c := range ran {
		if ran[c].Load() != 1 {
			t.Fatalf("chunk %d ran %d times", c, ran[c].Load())
		}
	}
}

// TestDoWithCtxStopsStealingMidRun: canceling while chunks are in flight
// stops further stealing (some chunks never run) and returns the cause —
// the all-or-nothing contract's mechanism. Started chunks always finish.
func TestDoWithCtxStopsStealingMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const chunks = 64
	err := DoCtx(ctx, chunks, 4, func(c int) {
		if started.Add(1) == 3 {
			cancel() // fires while most chunks are still unclaimed
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= chunks {
		t.Fatalf("all %d chunks ran despite mid-run cancel", n)
	}
	// Sequential path too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var seq int
	err = DoCtx(ctx2, chunks, 1, func(c int) {
		seq++
		if seq == 2 {
			cancel2()
		}
	})
	if err != context.Canceled || seq != 2 {
		t.Fatalf("sequential: err=%v ran=%d, want cancel after 2", err, seq)
	}
}

// TestDoWithCtxReleasesScratchOnCancel: acquire/release stay paired even
// when the run is cut short.
func TestDoWithCtxReleasesScratchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var acquired, released atomic.Int64
	DoWithCtx(ctx, 8, 4,
		func() int { acquired.Add(1); return 0 },
		func(int) { released.Add(1) },
		func(int, int) {})
	if a, r := acquired.Load(), released.Load(); a != r {
		t.Fatalf("acquire/release unbalanced on cancel: %d vs %d", a, r)
	}
}
