package bicomp

import (
	"fmt"
	"slices"
	"sync"

	"saphyra/internal/graph"
)

// BlockCSR is a target-independent, block-annotated view of the graph's
// adjacency structure. It re-orders every node's neighbor list so that
// neighbors sharing a biconnected block are contiguous ("runs"), and
// annotates each run with the block id and the owner's out-reach r-value in
// that block, and each grouped edge with the neighbor's r-value. Hot loops
// that previously resolved EdgeBlock per directed edge and OutReach.Of per
// endpoint (the exact 2-hop phase, the sampler's per-target tables) instead
// stream over the runs with zero lookups.
//
// Layout. Nbr and RNbr are edge-parallel arrays of length 2m aligned with
// each other; node u's grouped adjacency occupies the same CSR segment
// [G.AdjOffset(u), G.AdjOffset(u+1)) as in the underlying graph, permuted so
// that blocks appear in ascending id order and neighbors stay sorted within
// a run. The run index is itself a CSR over nodes: node u's runs are
// RunOff[u]..RunOff[u+1), and run j spans the edge range
// [RunStart[j], RunStart[j+1]) — runs are globally contiguous, so the
// sentinel entry RunStart[len] = 2m closes the last run.
//
// Memory: 24 bytes per directed edge (Nbr + RNbr at 4 each, NbrRun + Mate
// at 8 each — 48m bytes total) plus ~24 bytes per run; the number of runs
// is sum_u |NodeBlocks[u]| <= n + (cutpoint memberships), i.e. barely
// above n for real networks.
// A BlockCSR is built either in memory by NewBlockCSR or opened zero-copy
// from a serialized file by OpenMapped (see persist.go). Mapped views carry
// only the arrays and the embedded graph: D and O are nil, because no
// engine consuming the view needs them — consumers that do (the bc
// sampler's per-target alias tables) recompute them via
// core.PreprocessBCFromView.
type BlockCSR struct {
	G *graph.Graph
	D *Decomposition // nil for mapped views until EnsureDecomposition
	O *OutReach      // nil for mapped views until EnsureDecomposition

	// backfill serializes EnsureDecomposition on mapped views; BlockCSR
	// values are always handled by pointer, so the mutex is never copied.
	backfill sync.Mutex

	// sketchState holds the lazily-built landmark distance sketches
	// (sketch.go); same by-pointer-only discipline as backfill.
	sketchState

	// rFlat is the serialized out-reach table of a mapped view (persist.go
	// flag bit 1): R flattened in (block, member) order, aliasing the mapped
	// file. EnsureDecomposition rebuilds O from it in O(runs) instead of
	// rerunning the NewOutReach DP; nil for views from files without the
	// section (and for in-memory builds, which carry O directly).
	rFlat []int64

	// dFlat is the serialized decomposition section of a mapped view
	// (persist.go flag bit 3), aliasing the mapped file.
	// EnsureDecomposition rebuilds D from it via NewDecompositionFromView
	// instead of rerunning the Decompose DFS; nil for views from files
	// without the section (and for in-memory builds, which carry D).
	dFlat *decompFlat

	// Nbr is the grouped adjacency: node u's neighbors, permuted block by
	// block. RNbr[i] = r_b(Nbr[i]) for the block b of the run containing i.
	Nbr  []graph.Node
	RNbr []int32

	// NbrRun[i] is the run index (into RunBlock/RunStart/...) of the
	// reciprocal side of grouped edge i: the run of node Nbr[i] for the
	// edge's block. Mate[i] is the absolute position of the edge's owner
	// within that run — since runs are sorted by node id, the owner-side
	// suffix "neighbors of Nbr[i] in this block with id greater than the
	// owner" is exactly [Mate[i]+1, RunStart[NbrRun[i]+1]), with no search.
	NbrRun []int64
	Mate   []int64

	// RunOff (len n+1) indexes runs per node; RunBlock[j] and RunR[j] are
	// the block id of run j and r_block(owner); RunStart (len runs+1, last
	// entry 2m) gives each run's edge range; RunDegSum[j] is the sum of
	// graph degrees over the run's neighbors (the cost model for the exact
	// phase's push/pull choice and chunk balancing).
	RunOff    []int64
	RunBlock  []int32
	RunR      []int32
	RunStart  []int64
	RunDegSum []int64
}

// NewBlockCSR builds the view in O(n + m) time. The per-node block lists of
// d are already sorted, so runs come out in ascending block order and the
// in-CSR-order fill keeps neighbors sorted within each run.
func NewBlockCSR(d *Decomposition, o *OutReach) *BlockCSR {
	g := d.G
	n := g.NumNodes()
	m2 := int64(2 * g.NumEdges())
	var runs int64
	for _, bs := range d.NodeBlocks {
		runs += int64(len(bs))
	}
	v := &BlockCSR{
		G:         g,
		D:         d,
		O:         o,
		Nbr:       make([]graph.Node, m2),
		RNbr:      make([]int32, m2),
		NbrRun:    make([]int64, m2),
		Mate:      make([]int64, m2),
		RunOff:    make([]int64, n+1),
		RunBlock:  make([]int32, runs),
		RunR:      make([]int32, runs),
		RunStart:  make([]int64, runs+1),
		RunDegSum: make([]int64, runs),
	}

	// blockPos[b] = position of block b within the current node's run list;
	// always written before read for each node, so no clearing is needed.
	blockPos := make([]int32, d.NumBlocks)
	// groupedPos maps each original CSR edge index to its grouped position,
	// so the reciprocal-edge pass below runs without searches.
	groupedPos := make([]int64, m2)
	// runOf[p] = run containing grouped position p (filled during grouping).
	runOf := make([]int64, m2)
	var cnt, cursor []int64

	var run int64
	for u := 0; u < n; u++ {
		v.RunOff[u] = run
		bs := d.NodeBlocks[u]
		if len(bs) == 0 {
			continue // isolated node: no edges, no runs
		}
		if cap(cnt) < len(bs) {
			cnt = make([]int64, len(bs))
			cursor = make([]int64, len(bs))
		}
		cnt = cnt[:len(bs)]
		cursor = cursor[:len(bs)]
		for k, b := range bs {
			v.RunBlock[run+int64(k)] = b
			v.RunR[run+int64(k)] = int32(o.Of(b, graph.Node(u)))
			blockPos[b] = int32(k)
			cnt[k] = 0
		}
		base := g.AdjOffset(graph.Node(u))
		nbrs := g.Neighbors(graph.Node(u))
		for i := range nbrs {
			cnt[blockPos[d.EdgeBlock[base+int64(i)]]]++
		}
		acc := base
		for k := range bs {
			v.RunStart[run+int64(k)] = acc
			cursor[k] = acc
			acc += cnt[k]
		}
		for i, w := range nbrs {
			b := d.EdgeBlock[base+int64(i)]
			k := blockPos[b]
			p := cursor[k]
			cursor[k] = p + 1
			v.Nbr[p] = w
			v.RNbr[p] = int32(o.Of(b, w))
			groupedPos[base+int64(i)] = p
			runOf[p] = run + int64(k)
			v.RunDegSum[run+int64(k)] += int64(g.Degree(w))
		}
		run += int64(len(bs))
	}
	v.RunOff[n] = run
	v.RunStart[run] = m2

	// Reciprocal pass: for grouped edge p = (u -> w), locate the reverse
	// edge (w -> u) via the sorted original adjacency and record its grouped
	// run and position.
	for u := 0; u < n; u++ {
		base := g.AdjOffset(graph.Node(u))
		for i, w := range g.Neighbors(graph.Node(u)) {
			p := groupedPos[base+int64(i)]
			rev := groupedPos[g.EdgeIndex(w, graph.Node(u))]
			v.NbrRun[p] = runOf[rev]
			v.Mate[p] = rev
		}
	}
	return v
}

// Runs returns the run index range of node u: u's runs are j in [lo, hi).
func (v *BlockCSR) Runs(u graph.Node) (lo, hi int64) {
	return v.RunOff[u], v.RunOff[u+1]
}

// EnsureDecomposition returns the view's decomposition and out-reach
// tables, recomputing and backfilling them from the embedded graph when the
// view was opened from a file (mapped views never carry them in memory —
// no engine consuming the view needs them; see persist.go). Decompose is a
// deterministic function of the graph, so the recomputed block ids agree
// with the serialized annotations. Files written with the decomposition
// section (persist.go flag bit 3) skip the O(n+m) Decompose DFS entirely:
// the tables are reconstructed from the section and the run arrays in
// O(n + runs) via NewDecompositionFromView, and files with the out-reach
// section (flag bit 1) likewise skip the NewOutReach block-cut-tree DP,
// rebuilding from the serialized r-values in O(runs) with a Claim 9
// consistency check. Either section failing validation falls back to the
// recomputation — a corrupt section costs cold-start time, never
// correctness. Safe for concurrent use: the common serving pattern hands
// one mapped view to many goroutines.
func (v *BlockCSR) EnsureDecomposition() (*Decomposition, *OutReach) {
	v.backfill.Lock()
	defer v.backfill.Unlock()
	if v.D == nil || v.O == nil {
		var d *Decomposition
		if v.dFlat != nil {
			d, _ = NewDecompositionFromView(v)
		}
		if d == nil {
			d = Decompose(v.G)
		}
		var o *OutReach
		if v.rFlat != nil {
			o, _ = NewOutReachFromFlat(d, v.rFlat)
		}
		if o == nil {
			o = NewOutReach(d)
		}
		v.D, v.O = d, o
	}
	return v.D, v.O
}

// GroupedAdj is the view's adjacency in block-grouped order (node u's
// neighbors are v.Nbr over u's CSR segment: per-block runs in ascending
// block id, sorted within each run). It implements graph.Adjacency for
// order-invariant traversals — BFS distance labels do not depend on
// neighbor order, so running them on the grouped arrays keeps an
// mmap-served engine on the view's pages without consulting the original
// CSR. Order-sensitive consumers (anything that indexes a neighbor list
// with a random variate) must keep reading v.G, whose sorted order is part
// of the determinism contract.
type GroupedAdj struct{ V *BlockCSR }

// NumNodes implements graph.Adjacency.
func (a GroupedAdj) NumNodes() int { return a.V.G.NumNodes() }

// Neighbors implements graph.Adjacency: u's neighbors in grouped order.
func (a GroupedAdj) Neighbors(u graph.Node) []graph.Node {
	return a.V.Nbr[a.V.G.AdjOffset(u):a.V.G.AdjOffset(u+1)]
}

// CSR exposes the grouped adjacency as raw CSR arrays: the graph's offsets
// (runs tile the same per-node segments) over the view's block-grouped Nbr
// array. This is the zero-dispatch form the msbfs engine streams — the
// returned slices alias the view (possibly mmap-backed) and must not be
// modified.
func (a GroupedAdj) CSR() (offsets []int64, nbr []graph.Node) {
	off, _ := a.V.G.CSR()
	return off, a.V.Nbr
}

// BFSDistancesInto is graph.BFSDistancesAdj specialized to the grouped
// arrays: the inner loop slices v.Nbr directly, so serving hot loops (the
// closeness pricer) pay one dispatch per traversal, not per node. Distances
// are bitwise-identical to BFS over the sorted CSR — labels depend only on
// the edge set.
func (a GroupedAdj) BFSDistancesInto(source graph.Node, dist []int32) []int32 {
	v := a.V
	g := v.G
	n := g.NumNodes()
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.Node, 0, n)
	queue = append(queue, source)
	dist[source] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range v.Nbr[g.AdjOffset(u):g.AdjOffset(u+1)] {
			if dist[w] == -1 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// RunEdges returns the edge index range of run j into Nbr/RNbr.
func (v *BlockCSR) RunEdges(j int64) (lo, hi int64) {
	return v.RunStart[j], v.RunStart[j+1]
}

// FindRun returns the run index of node u for block b, or -1 if u has no
// edges in b. Runs are sorted by block id: the typical 1-3 entry list is
// scanned linearly (with early exit), hub cutpoints bridging thousands of
// pendant blocks fall back to binary search.
func (v *BlockCSR) FindRun(u graph.Node, b int32) int64 {
	lo, hi := v.RunOff[u], v.RunOff[u+1]
	if hi-lo <= 8 {
		for j := lo; j < hi; j++ {
			switch bb := v.RunBlock[j]; {
			case bb == b:
				return j
			case bb > b:
				return -1
			}
		}
		return -1
	}
	blocks := v.RunBlock[lo:hi]
	if k, ok := slices.BinarySearch(blocks, b); ok {
		return lo + int64(k)
	}
	return -1
}

// Validate checks the view's invariants. For tests and debugging.
//
// The structural half needs no decomposition and therefore runs on mapped
// views too: runs tile the CSR segments in ascending block order, grouped
// adjacency is a per-node permutation of the graph's, the NbrRun/Mate
// reciprocal index round-trips, per-edge r-annotations agree with the
// reciprocal run's owner annotation, and RunDegSum matches the graph. When
// the view carries its decomposition (D and O non-nil), every annotation is
// additionally cross-checked against EdgeBlock and OutReach.Of.
func (v *BlockCSR) Validate() error {
	if err := v.validateStructure(); err != nil {
		return err
	}
	if v.D == nil || v.O == nil {
		return nil // mapped view: no decomposition to cross-check against
	}
	g, d, o := v.G, v.D, v.O
	n := g.NumNodes()
	if got, want := v.RunOff[n], int64(len(v.RunBlock)); got != want {
		return fmt.Errorf("bicomp: RunOff[n] = %d, want %d runs", got, want)
	}
	if got, want := v.RunStart[len(v.RunStart)-1], int64(2*g.NumEdges()); got != want {
		return fmt.Errorf("bicomp: RunStart sentinel = %d, want 2m = %d", got, want)
	}
	for u := graph.Node(0); int(u) < n; u++ {
		lo, hi := v.Runs(u)
		if int(hi-lo) != len(d.NodeBlocks[u]) {
			return fmt.Errorf("bicomp: node %d has %d runs, want %d blocks", u, hi-lo, len(d.NodeBlocks[u]))
		}
		if lo < hi && v.RunStart[lo] != g.AdjOffset(u) {
			return fmt.Errorf("bicomp: node %d first run starts at %d, want %d", u, v.RunStart[lo], g.AdjOffset(u))
		}
		var degSeen int64
		for j := lo; j < hi; j++ {
			b := v.RunBlock[j]
			if b != d.NodeBlocks[u][j-lo] {
				return fmt.Errorf("bicomp: node %d run %d block %d != NodeBlocks %d", u, j-lo, b, d.NodeBlocks[u][j-lo])
			}
			if int64(v.RunR[j]) != o.Of(b, u) {
				return fmt.Errorf("bicomp: node %d block %d RunR %d != Of %d", u, b, v.RunR[j], o.Of(b, u))
			}
			elo, ehi := v.RunEdges(j)
			var degSum int64
			for i := elo; i < ehi; i++ {
				w := v.Nbr[i]
				if i > elo && v.Nbr[i-1] >= w {
					return fmt.Errorf("bicomp: node %d run of block %d not sorted", u, b)
				}
				if got := d.BlockOfEdge(u, w); got != b {
					return fmt.Errorf("bicomp: edge (%d,%d) grouped under block %d, EdgeBlock says %d", u, w, b, got)
				}
				if int64(v.RNbr[i]) != o.Of(b, w) {
					return fmt.Errorf("bicomp: edge (%d,%d) RNbr %d != Of %d", u, w, v.RNbr[i], o.Of(b, w))
				}
				jr := v.NbrRun[i]
				if want := v.FindRun(w, b); jr != want {
					return fmt.Errorf("bicomp: edge (%d,%d) NbrRun %d != %d", u, w, jr, want)
				}
				mate := v.Mate[i]
				if mate < v.RunStart[jr] || mate >= v.RunStart[jr+1] || v.Nbr[mate] != u {
					return fmt.Errorf("bicomp: edge (%d,%d) Mate %d does not point back at %d", u, w, mate, u)
				}
				degSum += int64(g.Degree(w))
			}
			if degSum != v.RunDegSum[j] {
				return fmt.Errorf("bicomp: node %d block %d RunDegSum %d != %d", u, b, v.RunDegSum[j], degSum)
			}
			degSeen += ehi - elo
		}
		if degSeen != int64(g.Degree(u)) {
			return fmt.Errorf("bicomp: node %d runs cover %d edges, degree %d", u, degSeen, g.Degree(u))
		}
	}
	return nil
}

// validateStructure checks every invariant expressible without the
// decomposition — the full contract of a deserialized view.
func (v *BlockCSR) validateStructure() error {
	g := v.G
	n := g.NumNodes()
	m2 := int64(2 * g.NumEdges())
	runs := int64(len(v.RunBlock))
	if int64(len(v.RunR)) != runs || int64(len(v.RunDegSum)) != runs || int64(len(v.RunStart)) != runs+1 {
		return fmt.Errorf("bicomp: run array lengths inconsistent (%d blocks, %d r, %d degsum, %d starts)",
			runs, len(v.RunR), len(v.RunDegSum), len(v.RunStart))
	}
	if int64(len(v.Nbr)) != m2 || int64(len(v.RNbr)) != m2 || int64(len(v.NbrRun)) != m2 || int64(len(v.Mate)) != m2 {
		return fmt.Errorf("bicomp: edge array lengths != 2m = %d", m2)
	}
	if len(v.RunOff) != n+1 {
		return fmt.Errorf("bicomp: RunOff length %d, want n+1 = %d", len(v.RunOff), n+1)
	}
	if v.RunOff[0] != 0 || v.RunOff[n] != runs {
		return fmt.Errorf("bicomp: RunOff spans [%d, %d], want [0, %d]", v.RunOff[0], v.RunOff[n], runs)
	}
	if v.RunStart[runs] != m2 {
		return fmt.Errorf("bicomp: RunStart sentinel = %d, want 2m = %d", v.RunStart[runs], m2)
	}
	var sorted []graph.Node
	for u := graph.Node(0); int(u) < n; u++ {
		lo, hi := v.Runs(u)
		if lo > hi {
			return fmt.Errorf("bicomp: RunOff not monotone at node %d", u)
		}
		if lo == hi {
			if g.Degree(u) != 0 {
				return fmt.Errorf("bicomp: node %d has no runs but degree %d", u, g.Degree(u))
			}
			continue
		}
		if v.RunStart[lo] != g.AdjOffset(u) {
			return fmt.Errorf("bicomp: node %d first run starts at %d, want %d", u, v.RunStart[lo], g.AdjOffset(u))
		}
		if v.RunStart[hi] != g.AdjOffset(u)+int64(g.Degree(u)) {
			return fmt.Errorf("bicomp: node %d runs end at %d, want %d", u, v.RunStart[hi], g.AdjOffset(u)+int64(g.Degree(u)))
		}
		for j := lo; j < hi; j++ {
			if j > lo && v.RunBlock[j-1] >= v.RunBlock[j] {
				return fmt.Errorf("bicomp: node %d run blocks not strictly ascending", u)
			}
			elo, ehi := v.RunEdges(j)
			if elo > ehi {
				return fmt.Errorf("bicomp: run %d has negative span", j)
			}
			var degSum int64
			for i := elo; i < ehi; i++ {
				w := v.Nbr[i]
				if w < 0 || int(w) >= n {
					return fmt.Errorf("bicomp: grouped edge %d targets out-of-range node %d", i, w)
				}
				if i > elo && v.Nbr[i-1] >= w {
					return fmt.Errorf("bicomp: node %d run %d not strictly sorted", u, j-lo)
				}
				jr := v.NbrRun[i]
				if jr < v.RunOff[w] || jr >= v.RunOff[w+1] {
					return fmt.Errorf("bicomp: edge (%d,%d) NbrRun %d outside node %d's runs", u, w, jr, w)
				}
				if v.RunBlock[jr] != v.RunBlock[j] {
					return fmt.Errorf("bicomp: edge (%d,%d) reciprocal run block %d != %d", u, w, v.RunBlock[jr], v.RunBlock[j])
				}
				mate := v.Mate[i]
				if mate < v.RunStart[jr] || mate >= v.RunStart[jr+1] || v.Nbr[mate] != u {
					return fmt.Errorf("bicomp: edge (%d,%d) Mate %d does not point back at %d", u, w, mate, u)
				}
				if v.Mate[mate] != i || v.NbrRun[mate] != j {
					return fmt.Errorf("bicomp: edge (%d,%d) reciprocal index does not round-trip", u, w)
				}
				if v.RNbr[i] != v.RunR[jr] {
					return fmt.Errorf("bicomp: edge (%d,%d) RNbr %d != reciprocal RunR %d", u, w, v.RNbr[i], v.RunR[jr])
				}
				degSum += int64(g.Degree(w))
			}
			if degSum != v.RunDegSum[j] {
				return fmt.Errorf("bicomp: run %d RunDegSum %d != %d", j, v.RunDegSum[j], degSum)
			}
		}
		// The grouped segment must be a permutation of the node's sorted
		// adjacency: sort a copy and compare element-wise.
		grouped := v.Nbr[g.AdjOffset(u) : g.AdjOffset(u)+int64(g.Degree(u))]
		sorted = append(sorted[:0], grouped...)
		slices.Sort(sorted)
		for i, w := range g.Neighbors(u) {
			if sorted[i] != w {
				return fmt.Errorf("bicomp: node %d grouped adjacency is not a permutation of its CSR adjacency", u)
			}
		}
	}
	return nil
}
