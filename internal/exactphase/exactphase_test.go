package exactphase

import (
	"context"

	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

func newEngine(t testing.TB, g *graph.Graph) *Engine {
	t.Helper()
	d := bicomp.Decompose(g)
	o := bicomp.NewOutReach(d)
	v := bicomp.NewBlockCSR(d, o)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(v)
}

// fixture returns a target set, its index map, and w_A for the graph.
func fixture(g *graph.Graph, stride int) (targets []graph.Node, aIndex []int32, wA float64, o *bicomp.OutReach) {
	d := bicomp.Decompose(g)
	o = bicomp.NewOutReach(d)
	n := g.NumNodes()
	aIndex = make([]int32, n)
	for i := range aIndex {
		aIndex[i] = -1
	}
	for v := 0; v < n; v += stride {
		aIndex[v] = int32(len(targets))
		targets = append(targets, graph.Node(v))
	}
	wA = o.WeightOfBlocks(o.BlocksOf(targets))
	return targets, aIndex, wA, o
}

// bruteExact is the naive reference: enumerate every ordered node pair (s,t)
// at distance exactly 2, count sigma_st as the number of common neighbors,
// and for every common middle v in A whose two edges share a block,
// accumulate r_b(s) r_b(t) / (sigma_st wA). Written pair-first — the
// opposite iteration order of the engine — straight from Eq 29.
func bruteExact(g *graph.Graph, o *bicomp.OutReach, aIndex []int32, wA float64, k int) (float64, []float64) {
	d := o.D
	n := g.NumNodes()
	exact := make([]float64, k)
	var lambda float64
	for s := graph.Node(0); int(s) < n; s++ {
		for t := graph.Node(0); int(t) < n; t++ {
			if s == t || g.HasEdge(s, t) {
				continue
			}
			var commons []graph.Node
			for _, v := range g.Neighbors(s) {
				if g.HasEdge(v, t) {
					commons = append(commons, v)
				}
			}
			if len(commons) == 0 {
				continue
			}
			sigma := float64(len(commons))
			for _, v := range commons {
				ai := aIndex[v]
				if ai < 0 {
					continue
				}
				b := d.BlockOfEdge(s, v)
				if b < 0 || b != d.BlockOfEdge(v, t) {
					continue
				}
				mass := float64(o.Of(b, s)) * float64(o.Of(b, t)) / (sigma * wA)
				exact[ai] += mass
				lambda += mass
			}
		}
	}
	return lambda, exact
}

// pendantHeavy attaches leaf chains to a small core: most blocks are size-2
// pendant edges and most nodes are cutpoints — the regime the run-length
// grouping targets.
func pendantHeavy(n int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	core := n / 4
	b := graph.NewBuilder(n)
	for i := 1; i < core; i++ {
		b.AddEdge(graph.Node(i), graph.Node(rng.IntN(i)))
	}
	for e := 0; e < core; e++ {
		b.AddEdge(graph.Node(rng.IntN(core)), graph.Node(rng.IntN(core)))
	}
	for v := core; v < n; v++ {
		b.AddEdge(graph.Node(v), graph.Node(rng.IntN(core)))
	}
	return b.Build()
}

// TestEngineMatchesBruteForce is the differential test: the run-length
// engine must agree with the naive pair-first enumerator on every graph
// family the paper evaluates (scale-free, road-like, pendant-heavy).
func TestEngineMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(220, 3, 1)},
		{"road", graph.RoadNetwork(14, 14, 0.3, 2)},
		{"pendant", pendantHeavy(240, 3)},
		{"tree", graph.RandomTree(150, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, stride := range []int{1, 3, 7} {
				targets, aIndex, wA, o := fixture(tc.g, stride)
				if wA == 0 {
					t.Fatalf("stride %d: degenerate fixture", stride)
				}
				e := newEngine(t, tc.g)
				gotL, gotE, _ := e.Run(context.Background(), targets, aIndex, wA, 4)
				wantL, wantE := bruteExact(tc.g, o, aIndex, wA, len(targets))
				if math.Abs(gotL-wantL) > 1e-9*(1+math.Abs(wantL)) {
					t.Errorf("stride %d: lambdaHat %g, brute force %g", stride, gotL, wantL)
				}
				for i := range gotE {
					if math.Abs(gotE[i]-wantE[i]) > 1e-9*(1+wantE[i]) {
						t.Errorf("stride %d: exact[%d] = %g, brute force %g", stride, i, gotE[i], wantE[i])
					}
				}
			}
		})
	}
}

// TestEngineWorkerCountBitwise: any worker count must produce
// bitwise-identical output — the chunking is worker-independent and the
// merge is in chunk order.
func TestEngineWorkerCountBitwise(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.BarabasiAlbert(400, 4, 7),
		pendantHeavy(400, 8),
		graph.RoadNetwork(18, 18, 0.25, 9),
	} {
		targets, aIndex, wA, _ := fixture(g, 5)
		e := newEngine(t, g)
		refL, refE, _ := e.Run(context.Background(), targets, aIndex, wA, 1)
		for _, workers := range []int{2, 8} {
			l, ex, _ := e.Run(context.Background(), targets, aIndex, wA, workers)
			if l != refL {
				t.Errorf("workers=%d: lambdaHat %v != %v (not bitwise identical)", workers, l, refL)
			}
			for i := range ex {
				if ex[i] != refE[i] {
					t.Errorf("workers=%d: exact[%d] %v != %v", workers, i, ex[i], refE[i])
				}
			}
		}
		// and repeated runs through the pooled scratch stay identical
		l, _, _ := e.Run(context.Background(), targets, aIndex, wA, 8)
		if l != refL {
			t.Errorf("repeat run: lambdaHat %v != %v", l, refL)
		}
	}
}

// TestEngineRunIntoReuse: RunInto must zero the destination and match Run.
func TestEngineRunIntoReuse(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 5)
	targets, aIndex, wA, _ := fixture(g, 4)
	e := newEngine(t, g)
	wantL, wantE, _ := e.Run(context.Background(), targets, aIndex, wA, 2)
	dst := make([]float64, len(targets))
	for i := range dst {
		dst[i] = math.NaN() // must be overwritten
	}
	gotL, _ := e.RunInto(context.Background(), dst, targets, aIndex, wA, 2)
	if gotL != wantL {
		t.Fatalf("RunInto lambda %v != Run %v", gotL, wantL)
	}
	for i := range dst {
		if dst[i] != wantE[i] {
			t.Fatalf("RunInto exact[%d] %v != %v", i, dst[i], wantE[i])
		}
	}
}

// TestEngineConcurrentRuns exercises the cost-weighted scheduler and the
// scratch pools under the race detector: several goroutines run overlapping
// multi-worker evaluations on one shared engine.
func TestEngineConcurrentRuns(t *testing.T) {
	g := graph.BarabasiAlbert(500, 4, 11)
	e := newEngine(t, g)
	targets, aIndex, wA, _ := fixture(g, 3)
	refL, refE, _ := e.Run(context.Background(), targets, aIndex, wA, 1)
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			l, ex, _ := e.Run(context.Background(), targets, aIndex, wA, workers)
			if l != refL {
				t.Errorf("concurrent run (workers=%d): lambda %v != %v", workers, l, refL)
			}
			for i := range ex {
				if ex[i] != refE[i] {
					t.Errorf("concurrent run (workers=%d): exact[%d] differs", workers, i)
					break
				}
			}
		}(1 + r%4)
	}
	wg.Wait()
}

// TestEngineEdgeCases: empty targets, isolated nodes, zero mass.
func TestEngineEdgeCases(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetNumNodes(6) // nodes 3..5 isolated
	g := b.Build()
	e := newEngine(t, g)
	aIndex := make([]int32, 6)
	for i := range aIndex {
		aIndex[i] = -1
	}
	if l := mustRun(t, e, nil, aIndex, 1.0); l != 0 {
		t.Errorf("empty targets: lambda %v", l)
	}
	aIndex[4] = 0
	if l := mustRun(t, e, []graph.Node{4}, aIndex, 1.0); l != 0 {
		t.Errorf("isolated target: lambda %v", l)
	}
	aIndex[4] = -1
	aIndex[1] = 0
	if l := mustRun(t, e, []graph.Node{1}, aIndex, 0); l != 0 {
		t.Errorf("zero wA: lambda %v", l)
	}
}

func mustRun(t *testing.T, e *Engine, targets []graph.Node, aIndex []int32, wA float64) float64 {
	t.Helper()
	l, _, _ := e.Run(context.Background(), targets, aIndex, wA, 2)
	return l
}
