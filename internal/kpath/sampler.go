package kpath

import (
	"math/rand/v2"

	"saphyra/internal/core"
	"saphyra/internal/graph"
	"saphyra/internal/sched"
)

// walkSampler draws random walks of uniform length in [minLen, maxLen] from
// uniform start nodes and reports first visits to target nodes. It backs
// both the plain estimator (minLen 1: the whole sample space) and the
// partitioned one (minLen 2: the approximate-subspace conditional), and
// implements core.BatchSampler so the framework drives it batch-wise with an
// allocation-free hot loop.
//
// Steps index the sorted adjacency lists with uniform variates, so the walk
// realized by a given rng stream depends on neighbor order — the reason
// kpath never walks the block-grouped arrays (see the package comment).
type walkSampler struct {
	g              *graph.Graph
	aIndex         []int32
	minLen, maxLen int
	rng            *rand.Rand
	visited        []int32
	epochs         *sched.Epoch // over visited
	hits           []int32

	// stop is the framework-wired sub-round cancellation flag, polled every
	// cancelPollWalks walks inside DrawBatch (see core.stoppable). Polls
	// consume no randomness: an unfired stop changes no bits.
	stop *sched.Stop
}

// SetStop wires the sub-round cancellation flag (core.stoppable).
func (s *walkSampler) SetStop(st *sched.Stop) { s.stop = st }

// cancelPollWalks is the walk stride between stop polls: walks are k cheap
// adjacency indexings each, so a few thousand of them bound time-to-cancel
// well under a millisecond while keeping the poll off the per-step path.
const cancelPollWalks = 1 << 12

func newWalkSampler(g *graph.Graph, aIndex []int32, minLen, maxLen int, seed int64) *walkSampler {
	s := &walkSampler{
		g:       g,
		aIndex:  aIndex,
		minLen:  minLen,
		maxLen:  maxLen,
		rng:     rand.New(rand.NewPCG(uint64(seed), 0x6a09e667f3bcc909)),
		visited: make([]int32, g.NumNodes()),
		hits:    make([]int32, 0, maxLen),
	}
	s.epochs = sched.NewEpoch(s.visited)
	return s
}

// walk performs one random walk. With counts == nil, hit indices are
// appended to s.hits; otherwise counts[idx] is incremented directly.
func (s *walkSampler) walk(counts []int64) {
	ep := s.epochs.Next()
	n := s.g.NumNodes()
	u := graph.Node(s.rng.IntN(n))
	s.visited[u] = ep
	l := s.minLen
	if s.maxLen > s.minLen {
		l += s.rng.IntN(s.maxLen - s.minLen + 1)
	}
	for step := 0; step < l; step++ {
		nbrs := s.g.Neighbors(u)
		if len(nbrs) == 0 {
			break
		}
		u = nbrs[s.rng.IntN(len(nbrs))]
		if s.visited[u] != ep {
			s.visited[u] = ep
			if ai := s.aIndex[u]; ai >= 0 {
				if counts != nil {
					counts[ai]++
				} else {
					s.hits = append(s.hits, ai)
				}
			}
		}
	}
}

// Draw implements core.Sampler.
func (s *walkSampler) Draw() []int32 {
	s.hits = s.hits[:0]
	s.walk(nil)
	return s.hits
}

// DrawBatch implements core.BatchSampler. A raised stop returns early with
// a short count — only ever observed by a canceled run, whose estimate the
// framework discards whole.
func (s *walkSampler) DrawBatch(n int64, hits []int64) {
	for j := int64(0); j < n; j++ {
		if j&(cancelPollWalks-1) == 0 && s.stop.Stopped() {
			return
		}
		s.walk(hits)
	}
}

var _ core.BatchSampler = (*walkSampler)(nil)
