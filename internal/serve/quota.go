package serve

import (
	"math"
	"sync"
	"time"
)

// quotas is the per-client token-bucket admission layer: each client id (the
// Client-Id request header; missing means the shared "anonymous" bucket)
// refills at qps tokens per second up to burst, and every request spends one
// token before touching the cache or admission queue. A drained bucket is a
// 429 whose Retry-After is the exact time until the next token — the
// client-resilience loop (workload.Client) sleeps precisely that long
// instead of guessing.
//
// Quotas answer a different question than the admission queue: admission
// bounds how much work runs at once (global, load-derived), quotas bound how
// much any one caller may ask for (per-identity, policy-derived). A single
// greedy client drains its own bucket and nobody else's.
type quotas struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	qps     float64
	burst   float64
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxQuotaClients bounds the bucket map: beyond it, the map is reset rather
// than grown — a deliberate fail-open (brief over-admission) instead of an
// unbounded-memory fail-closed under a client-id flood.
const maxQuotaClients = 65536

func newQuotas(qps, burst float64) *quotas {
	if qps <= 0 {
		return nil // quotas disabled: one nil check per request
	}
	if burst < 1 {
		burst = math.Max(1, 2*qps)
	}
	return &quotas{
		buckets: make(map[string]*bucket),
		qps:     qps,
		burst:   burst,
		now:     time.Now,
	}
}

// take spends one token from client's bucket. The second return is the time
// until a token will be available when the bucket is drained (ok=false).
// A nil *quotas admits everything.
func (q *quotas) take(client string) (ok bool, retryIn time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[client]
	if b == nil {
		if len(q.buckets) >= maxQuotaClients {
			q.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.qps)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.qps
	return false, time.Duration(need * float64(time.Second))
}
