package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
	"saphyra/internal/shortestpath"
	"saphyra/internal/vc"
)

// VCBoundKind selects which VC-dimension upper bound feeds the Lemma 4
// sample ceiling (ablation of Table I).
type VCBoundKind int

const (
	// VCSubset uses the paper's personalized bound log(BS(A)) + 1 (default).
	VCSubset VCBoundKind = iota
	// VCBicomp uses the full-network bi-component bound log(BD(V)-1) + 1.
	VCBicomp
	// VCRiondato uses the [45] bound log(VD(V)-1) + 1 from the graph
	// diameter.
	VCRiondato
)

// BCOptions configures SaPHyRa_bc.
type BCOptions struct {
	Epsilon float64 // additive error on betweenness (Eq 2); default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // sampling goroutines; <= 0 means GOMAXPROCS
	Seed    int64

	VCBound VCBoundKind
	// DisableExactSubspace ablates the 2-hop exact subspace: everything is
	// estimated by sampling (plain bi-component sampling).
	DisableExactSubspace bool
	// DisableAdaptive ablates Bernstein early stopping (always draw the
	// full VC budget).
	DisableAdaptive bool
	// MaxSamples optionally caps sampling (guarantee void when binding).
	MaxSamples int64
}

func (o *BCOptions) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
}

// BCResult is the output of SaPHyRa_bc for a target set A.
type BCResult struct {
	// Nodes is the sorted, de-duplicated target set.
	Nodes []graph.Node
	// BC[i] is the betweenness estimate of Nodes[i] (Eq 3 normalization).
	BC []float64
	// BCA[i] is the exactly-computed cutpoint term bca(Nodes[i]).
	BCA []float64

	Gamma, Eta float64 // ISP survival mass and personalized fraction
	EpsStar    float64 // tolerance passed to the framework (eps / (gamma*eta))
	Est        *Estimate
}

// BCPreprocessed caches the target-independent preprocessing (bi-component
// decomposition and out-reach tables) so several target sets can be ranked
// on the same graph without redoing the O(n + m) setup.
type BCPreprocessed struct {
	G *graph.Graph
	D *bicomp.Decomposition
	O *bicomp.OutReach
}

// PreprocessBC decomposes the graph and computes out-reach tables.
func PreprocessBC(g *graph.Graph) *BCPreprocessed {
	d := bicomp.Decompose(g)
	return &BCPreprocessed{G: g, D: d, O: bicomp.NewOutReach(d)}
}

// EstimateBC runs the full SaPHyRa_bc pipeline on graph g for target set a.
func EstimateBC(g *graph.Graph, a []graph.Node, opt BCOptions) (*BCResult, error) {
	return PreprocessBC(g).EstimateBC(a, opt)
}

// EstimateBC runs SaPHyRa_bc for one target set on the preprocessed graph.
func (p *BCPreprocessed) EstimateBC(a []graph.Node, opt BCOptions) (*BCResult, error) {
	opt.setDefaults()
	if len(a) == 0 {
		return nil, errors.New("core: empty target set")
	}
	g, o := p.G, p.O
	n := g.NumNodes()
	for _, v := range a {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: target node %d out of range [0,%d)", v, n)
		}
	}
	nodes := dedupSorted(a)
	k := len(nodes)

	res := &BCResult{
		Nodes: nodes,
		BC:    make([]float64, k),
		BCA:   make([]float64, k),
	}
	for i, v := range nodes {
		res.BCA[i] = o.BCA(v)
	}

	blocksA := o.BlocksOf(nodes)
	wA := o.WeightOfBlocks(blocksA)
	res.Gamma = o.Gamma()
	if o.WTotal > 0 {
		res.Eta = wA / o.WTotal
	}
	gammaEta := 0.0
	if n >= 2 {
		gammaEta = wA / (float64(n) * float64(n-1))
	}
	if gammaEta <= 0 {
		// No intra-block pair mass touches A (e.g. isolated nodes): the
		// estimate is just the exact cutpoint term.
		copy(res.BC, res.BCA)
		return res, nil
	}
	// bc = gammaEta * R + bca, so an eps target on bc allows a tolerance of
	// eps / gammaEta on R. (Section IV-D writes eps* = eps*gamma*eta; with
	// that literal choice Theorem 24 would not follow, so we use the
	// division — see DESIGN.md.)
	epsStar := opt.Epsilon / gammaEta
	res.EpsStar = epsStar

	space, err := newBCSpace(p, nodes, blocksA, wA, opt)
	if err != nil {
		return nil, err
	}
	if epsStar >= 1 {
		// Any estimate in [0,1] is within eps of the truth after scaling by
		// gammaEta < eps; skip sampling and return the exact part alone.
		lambdaHat, exact := space.ExactPhase()
		for i := range res.BC {
			res.BC[i] = res.BCA[i] + gammaEta*exact[i]
		}
		res.Est = &Estimate{
			Risks:      exact,
			ExactRisks: exact,
			LambdaHat:  lambdaHat,
			EpsPrime:   math.Inf(1),
			VCDim:      space.VCDim(),
		}
		return res, nil
	}
	est, err := Run(space, Options{
		Epsilon:         epsStar,
		Delta:           opt.Delta,
		Workers:         opt.Workers,
		Seed:            opt.Seed,
		DisableAdaptive: opt.DisableAdaptive,
		MaxSamples:      opt.MaxSamples,
	})
	if err != nil {
		return nil, err
	}
	res.Est = est
	for i := range res.BC {
		res.BC[i] = res.BCA[i] + gammaEta*est.Risks[i]
	}
	return res, nil
}

func dedupSorted(a []graph.Node) []graph.Node {
	out := make([]graph.Node, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// bcSpace implements Space for RSP_bc (Section IV-B): the sample space is
// the personalized ISP space X_c^(A); the exact subspace is the set of
// 2-hop intra-block shortest paths whose middle node is in A (Eq 29).
type bcSpace struct {
	p       *BCPreprocessed
	nodes   []graph.Node
	aIndex  []int32 // node -> index in nodes, or -1
	blocksA []int32
	wA      float64

	// multistage sampling tables (Algorithm 2)
	blockCum []float64           // cumulative w_i over blocksA
	sCum     map[int32][]float64 // per block: cumulative r(s)*(S-r(s))
	tCum     map[int32][]float64 // per block: cumulative r(t)
	members  map[int32][]graph.Node

	lambdaHat float64
	exact     []float64
	vcdim     int

	disableExact bool
}

func newBCSpace(p *BCPreprocessed, nodes []graph.Node, blocksA []int32, wA float64, opt BCOptions) (*bcSpace, error) {
	g, d, o := p.G, p.D, p.O
	n := g.NumNodes()
	sp := &bcSpace{
		p:            p,
		nodes:        nodes,
		aIndex:       make([]int32, n),
		blocksA:      blocksA,
		wA:           wA,
		sCum:         make(map[int32][]float64, len(blocksA)),
		tCum:         make(map[int32][]float64, len(blocksA)),
		members:      make(map[int32][]graph.Node, len(blocksA)),
		disableExact: opt.DisableExactSubspace,
	}
	for i := range sp.aIndex {
		sp.aIndex[i] = -1
	}
	for i, v := range nodes {
		sp.aIndex[v] = int32(i)
	}

	// Multistage tables.
	sp.blockCum = make([]float64, len(blocksA))
	var acc float64
	for j, b := range blocksA {
		acc += float64(o.W[b])
		sp.blockCum[j] = acc
		ms := d.Blocks[b]
		sp.members[b] = ms
		sc := make([]float64, len(ms))
		tc := make([]float64, len(ms))
		var sAcc, tAcc float64
		S := float64(o.S[b])
		for i, v := range ms {
			r := float64(o.Of(b, v))
			sAcc += r * (S - r)
			tAcc += r
			sc[i] = sAcc
			tc[i] = tAcc
		}
		sp.sCum[b] = sc
		sp.tCum[b] = tc
	}

	// VC dimension (Corollary 22 / Table I).
	switch opt.VCBound {
	case VCRiondato:
		diamUB := int32(0)
		if n > 0 {
			// 2 * eccentricity of an arbitrary node upper-bounds the
			// diameter of its component; take the max over components via
			// the block bound fallback for safety.
			diamUB = 2 * graph.Eccentricity(g, maxDegreeNode(g))
			if bd := d.MaxBlockDiameterUpperBound(64); bd > diamUB {
				diamUB = bd
			}
		}
		sp.vcdim = vc.Riondato(diamUB)
	case VCBicomp:
		sp.vcdim = vc.FullNetwork(d.MaxBlockDiameterUpperBound(64))
	default:
		sp.vcdim = vc.Subset(d, nodes, 64)
		if full := vc.FullNetwork(d.MaxBlockDiameterUpperBound(64)); sp.vcdim > full {
			sp.vcdim = full
		}
	}
	if sp.vcdim < 1 {
		sp.vcdim = 1
	}

	if sp.disableExact {
		sp.lambdaHat = 0
		sp.exact = make([]float64, len(nodes))
	} else {
		sp.lambdaHat, sp.exact = exactBC(p, nodes, sp.aIndex, sp.wA, opt.Workers)
	}
	return sp, nil
}

func maxDegreeNode(g *graph.Graph) graph.Node {
	var best graph.Node
	bd := -1
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		if d := g.Degree(u); d > bd {
			bd = d
			best = u
		}
	}
	return best
}

// NumHypotheses implements Space.
func (sp *bcSpace) NumHypotheses() int { return len(sp.nodes) }

// VCDim implements Space.
func (sp *bcSpace) VCDim() int { return sp.vcdim }

// ExactPhase implements Space.
func (sp *bcSpace) ExactPhase() (float64, []float64) { return sp.lambdaHat, sp.exact }

// exactBC is Algorithm Exact_bc (Section IV-B): it enumerates, for every
// endpoint s adjacent to A, the 2-hop shortest paths s-v-t with both edges
// in the same block, and accumulates
//
//	lhat_v     += q'_st / (sigma_st * W_A)   for qualifying middles v in A
//	lambdaHat  += the same mass (summed over all A-middles)
//
// over ordered endpoint pairs. Runs in O(sum_{v in B} deg(v)^2) like
// Lemma 18, parallelized over endpoints with a static split (so the output
// is deterministic: per-worker partials are merged in worker order).
func exactBC(p *BCPreprocessed, nodes []graph.Node, aIndex []int32, wA float64, workers int) (float64, []float64) {
	g := p.G
	n := g.NumNodes()

	// endpoint candidates: neighbors of A
	endpoint := make([]bool, n)
	var endpoints []graph.Node
	for _, v := range nodes {
		for _, s := range g.Neighbors(v) {
			if !endpoint[s] {
				endpoint[s] = true
				endpoints = append(endpoints, s)
			}
		}
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(endpoints) {
		workers = len(endpoints)
	}
	if workers <= 1 {
		return exactBCRange(p, endpoints, aIndex, wA, len(nodes))
	}
	lambdas := make([]float64, workers)
	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(endpoints) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(endpoints) {
			hi = len(endpoints)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lambdas[w], partials[w] = exactBCRange(p, endpoints[lo:hi], aIndex, wA, len(nodes))
		}(w, lo, hi)
	}
	wg.Wait()
	exact := make([]float64, len(nodes))
	var lambdaHat float64
	for w := 0; w < workers; w++ {
		if partials[w] == nil {
			continue
		}
		lambdaHat += lambdas[w]
		for i, x := range partials[w] {
			exact[i] += x
		}
	}
	return lambdaHat, exact
}

// exactBCRange processes one contiguous endpoint range with private scratch
// arrays.
func exactBCRange(p *BCPreprocessed, endpoints []graph.Node, aIndex []int32, wA float64, k int) (float64, []float64) {
	g, d, o := p.G, p.D, p.O
	n := g.NumNodes()
	exact := make([]float64, k)
	var lambdaHat float64

	// scratch arrays with epoch stamps
	sigma := make([]int32, n)
	stamp := make([]int32, n)
	isNbr := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
		isNbr[i] = -1
	}

	for epoch, s := range endpoints {
		e := int32(epoch)
		// mark neighbors of s
		for _, v := range g.Neighbors(s) {
			isNbr[v] = e
		}
		// phase 1: sigma_st for all t at distance 2 (common-neighbor counts)
		for _, v := range g.Neighbors(s) {
			for _, t := range g.Neighbors(v) {
				if t == s || isNbr[t] == e {
					continue
				}
				if stamp[t] != e {
					stamp[t] = e
					sigma[t] = 0
				}
				sigma[t]++
			}
		}
		// phase 2: contributions of middles in A with the intra-block
		// condition eb(s,v) == eb(v,t)
		sBase := g.AdjOffset(s)
		for i, v := range g.Neighbors(s) {
			ai := aIndex[v]
			if ai < 0 {
				continue
			}
			bSV := d.EdgeBlock[sBase+int64(i)]
			rS := float64(o.Of(bSV, s))
			vBase := g.AdjOffset(v)
			for j, t := range g.Neighbors(v) {
				if t == s || isNbr[t] == e {
					continue
				}
				if d.EdgeBlock[vBase+int64(j)] != bSV {
					continue
				}
				// ordered pair (s, t), block bSV, sigma from phase 1
				mass := rS * float64(o.Of(bSV, t)) / (float64(sigma[t]) * wA)
				exact[ai] += mass
				lambdaHat += mass
			}
		}
	}
	return lambdaHat, exact
}

// NewSampler implements Space: Algorithm Gen_bc (Algorithm 2), multistage
// sampling with rejection of exact-subspace paths.
func (sp *bcSpace) NewSampler(seed int64) Sampler {
	return &bcSampler{
		sp:  sp,
		rng: rand.New(rand.NewSource(seed)),
		bfs: shortestpath.NewBiBFS(sp.p.G.NumNodes()),
	}
}

type bcSampler struct {
	sp   *bcSpace
	rng  *rand.Rand
	bfs  *shortestpath.BiBFS
	hits []int32
}

// Draw implements Sampler.
func (s *bcSampler) Draw() []int32 {
	sp := s.sp
	g := sp.p.G
	for {
		// stage 1: block proportional to w_i
		total := sp.blockCum[len(sp.blockCum)-1]
		j := sort.SearchFloat64s(sp.blockCum, s.rng.Float64()*total)
		if j >= len(sp.blockCum) {
			j = len(sp.blockCum) - 1
		}
		b := sp.blocksA[j]
		members := sp.members[b]
		sc, tc := sp.sCum[b], sp.tCum[b]

		// stage 2: source proportional to r(s)(S - r(s))
		si := sort.SearchFloat64s(sc, s.rng.Float64()*sc[len(sc)-1])
		if si >= len(members) {
			si = len(members) - 1
		}
		src := members[si]

		// stage 3: target proportional to r(t) over members \ {src}: draw a
		// point in the cumulative mass with src's interval excised.
		rs := tc[si]
		if si > 0 {
			rs -= tc[si-1]
		}
		pos := s.rng.Float64() * (tc[len(tc)-1] - rs)
		var before float64
		if si > 0 {
			before = tc[si-1]
		}
		if pos >= before {
			pos += rs
		}
		ti := sort.SearchFloat64s(tc, pos)
		if ti >= len(members) {
			ti = len(members) - 1
		}
		if ti == si { // float boundary: nudge deterministically
			if ti+1 < len(members) {
				ti++
			} else {
				ti--
			}
		}
		dst := members[ti]

		// stage 4: uniform shortest path between src and dst
		dist, _, ok := s.bfs.Query(g, src, dst)
		if !ok {
			continue // defensive: members of one block are always connected
		}
		path := s.bfs.SamplePath(g, s.rng)
		// rejection: exact-subspace paths (length 2 with middle in A)
		if !sp.disableExact && dist == 2 && sp.aIndex[path[1]] >= 0 {
			continue
		}
		s.hits = s.hits[:0]
		for _, v := range path[1 : len(path)-1] {
			if ai := sp.aIndex[v]; ai >= 0 {
				s.hits = append(s.hits, ai)
			}
		}
		return s.hits
	}
}

var _ Space = (*bcSpace)(nil)
