package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/bicomp"
	"saphyra/internal/faultinject"
)

// swapViewFile atomically replaces the view file's directory entry with
// content, the way a (possibly buggy) publisher would: the server's mapped
// inode is untouched — only the next open sees the new bytes.
func swapViewFile(t *testing.T, path string, content []byte) {
	t.Helper()
	tmp := filepath.Join(filepath.Dir(path), "swap.tmp")
	if err := os.WriteFile(tmp, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

func adminReload(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/admin/reload", nil))
	return w
}

// TestReloadFailurePaths: a reload that cannot open the new view — file
// missing, header garbage, checksum mismatch — returns a clean 500, leaves
// the old generation serving bit-identically, and leaks neither view
// references nor mappings.
func TestReloadFailurePaths(t *testing.T) {
	baselineMappings := bicomp.OpenMappings()
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	good, err := os.ReadFile(s.viewPath)
	if err != nil {
		t.Fatal(err)
	}
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50]}, Eps: 0.1, Delta: 0.05, Seed: 4}
	fresh, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("warmup: status %d", code)
	}

	checkStillServing := func(wantFailures int64) {
		t.Helper()
		if gen := s.Generation(); gen != 1 {
			t.Fatalf("generation %d after failed reload, want 1", gen)
		}
		resp, code := postRank(t, s.Handler(), req)
		if code != http.StatusOK {
			t.Fatalf("old generation stopped serving: status %d", code)
		}
		for i := range fresh.Scores {
			if resp.Scores[i] != fresh.Scores[i] {
				t.Fatal("old generation changed bits after a failed reload")
			}
		}
		if got := s.m.reloadFailures.Value(); got != wantFailures {
			t.Errorf("reloadFailures = %d, want %d", got, wantFailures)
		}
		if got := bicomp.OpenMappings(); got != baselineMappings+1 {
			t.Errorf("open mappings = %d, want %d (failed reload leaked a mapping)", got, baselineMappings+1)
		}
		if refs := s.cur.Load().handle.Refs(); refs != 0 {
			t.Errorf("current handle holds %d references at idle", refs)
		}
	}

	// Missing file.
	if err := os.Remove(s.viewPath); err != nil {
		t.Fatal(err)
	}
	if w := adminReload(t, s.Handler()); w.Code != http.StatusInternalServerError {
		t.Fatalf("reload with missing file: status %d, want 500: %s", w.Code, w.Body.String())
	}
	checkStillServing(1)

	// Garbage header.
	swapViewFile(t, s.viewPath, []byte("this is not a view file"))
	if w := adminReload(t, s.Handler()); w.Code != http.StatusInternalServerError {
		t.Fatalf("reload with garbage file: status %d, want 500", w.Code)
	}
	checkStillServing(2)

	// Bit rot: valid header, one flipped byte mid-file, stale checksum
	// trailer. The open must fail on the checksum, not serve corrupt scores.
	rotten := append([]byte(nil), good...)
	rotten[len(rotten)/2] ^= 0x10
	swapViewFile(t, s.viewPath, rotten)
	w := adminReload(t, s.Handler())
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("reload with bit-rotted file: status %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "checksum") {
		t.Errorf("bit-rot reload error does not mention the checksum: %s", w.Body.String())
	}
	checkStillServing(3)

	// Injected open failure (the fault the chaos hammer leans on).
	swapViewFile(t, s.viewPath, good)
	faultinject.Set("serve.reload.open", faultinject.Fault{Err: os.ErrDeadlineExceeded})
	faultinject.Enable()
	if w := adminReload(t, s.Handler()); w.Code != http.StatusInternalServerError {
		t.Fatalf("reload with injected open fault: status %d, want 500", w.Code)
	}
	faultinject.Reset()
	checkStillServing(4)

	// With the good bytes back, recovery is a plain reload.
	w = adminReload(t, s.Handler())
	if w.Code != http.StatusOK {
		t.Fatalf("recovery reload: status %d: %s", w.Code, w.Body.String())
	}
	if gen := s.Generation(); gen != 2 {
		t.Fatalf("generation %d after recovery, want 2", gen)
	}
	resp, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK || resp.Generation != 2 {
		t.Fatalf("post-recovery request: code %d gen %d", code, resp.Generation)
	}
	for i := range fresh.Scores {
		if resp.Scores[i] != fresh.Scores[i] {
			t.Fatal("same file, different bits across generations")
		}
	}
}

// TestReloadFlappingUnderTraffic: reloads that alternate between failing and
// succeeding, under concurrent traffic, never produce a wrong answer, a
// generation gap, or a leaked reference — the serial-number bookkeeping and
// the handle protocol hold when reloads flap.
func TestReloadFlappingUnderTraffic(t *testing.T) {
	defer faultinject.Reset()
	baselineMappings := bicomp.OpenMappings()
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true, CacheEntries: 4})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50], ids[150]}, Eps: 0.1, Delta: 0.05, Seed: 4}
	fresh, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("warmup: status %d", code)
	}

	// Prob 0.5: the reload sequence interleaves failures and successes.
	faultinject.Set("serve.reload.open", faultinject.Fault{Err: os.ErrInvalid, Prob: 0.5, Seed: 23})
	faultinject.Enable()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for h := 0; h < 3; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, code := postRank(t, s.Handler(), req)
				if code != http.StatusOK {
					t.Errorf("request under flapping reloads: status %d", code)
					return
				}
				for i := range fresh.Scores {
					if resp.Scores[i] != fresh.Scores[i] {
						t.Error("bits changed under flapping reloads")
						return
					}
				}
			}
		}()
	}
	var succeeded, failed int64
	for i := 0; i < 12; i++ {
		switch w := adminReload(t, s.Handler()); w.Code {
		case http.StatusOK:
			succeeded++
		case http.StatusInternalServerError:
			failed++
		default:
			t.Fatalf("reload %d: status %d", i, w.Code)
		}
	}
	close(stop)
	wg.Wait()
	faultinject.Reset()

	if failed == 0 || succeeded == 0 {
		t.Logf("flapping mix degenerate (%d ok, %d failed); invariants still checked", succeeded, failed)
	}
	if got, want := s.Generation(), uint64(1+succeeded); got != want {
		t.Errorf("generation %d after %d successful reloads, want %d", got, succeeded, want)
	}
	if got := s.m.reloadFailures.Value(); got != failed {
		t.Errorf("reloadFailures = %d, want %d", got, failed)
	}
	waitFor(t, 30*time.Second, "references and mappings to drain", func() bool {
		return s.cur.Load().handle.Refs() == 0 && bicomp.OpenMappings() == baselineMappings+1
	})
}
