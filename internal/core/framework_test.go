package core

import (
	"context"

	"math"
	"math/rand"
	"testing"
)

// coinSpace is a synthetic Space: hypothesis i has loss 1 with probability
// approxRisk[i] on an approximate-subspace sample (independent coins), and
// an exact subspace of mass lambdaHat carrying exact risks.
type coinSpace struct {
	lambdaHat  float64
	exactRisk  []float64
	approxRisk []float64
	dim        int
}

func (c *coinSpace) NumHypotheses() int { return len(c.approxRisk) }
func (c *coinSpace) VCDim() int         { return c.dim }
func (c *coinSpace) ExactPhase(context.Context) (float64, []float64, error) {
	e := make([]float64, len(c.exactRisk))
	copy(e, c.exactRisk)
	return c.lambdaHat, e, nil
}
func (c *coinSpace) NewSampler(seed int64) Sampler {
	rng := rand.New(rand.NewSource(seed))
	hits := make([]int32, 0, len(c.approxRisk))
	return SamplerFunc(func() []int32 {
		hits = hits[:0]
		for i, p := range c.approxRisk {
			if rng.Float64() < p {
				hits = append(hits, int32(i))
			}
		}
		return hits
	})
}

// trueRisk returns the combined risk of hypothesis i.
func (c *coinSpace) trueRisk(i int) float64 {
	return c.exactRisk[i] + (1-c.lambdaHat)*c.approxRisk[i]
}

func TestRunRejectsBadOptions(t *testing.T) {
	sp := &coinSpace{approxRisk: []float64{0.1}, exactRisk: []float64{0}, dim: 1}
	for _, opt := range []Options{
		{Epsilon: 0, Delta: 0.1},
		{Epsilon: 1.5, Delta: 0.1},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 0.1, Delta: 1},
	} {
		if _, err := Run(context.Background(), sp, opt); err == nil {
			t.Errorf("opt %+v: want error", opt)
		}
	}
	empty := &coinSpace{dim: 1}
	if _, err := Run(context.Background(), empty, Options{Epsilon: 0.1, Delta: 0.1}); err == nil {
		t.Error("empty hypothesis class: want error")
	}
}

func TestRunEstimatesWithinEpsilon(t *testing.T) {
	sp := &coinSpace{
		lambdaHat:  0.3,
		exactRisk:  []float64{0.02, 0, 0.1, 0.25},
		approxRisk: []float64{0.5, 0.03, 0.2, 0.4},
		dim:        3,
	}
	const eps = 0.05
	est, err := Run(context.Background(), sp, Options{Epsilon: eps, Delta: 0.01, Workers: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp.approxRisk {
		if diff := math.Abs(est.Risks[i] - sp.trueRisk(i)); diff > eps {
			t.Errorf("hypothesis %d: |est-true| = %g > eps", i, diff)
		}
	}
	if est.Samples <= 0 || est.Samples > est.NMax {
		t.Errorf("samples = %d, nmax = %d", est.Samples, est.NMax)
	}
	if est.LambdaHat != 0.3 {
		t.Errorf("lambdaHat = %g", est.LambdaHat)
	}
}

func TestRunRepeatedCoverage(t *testing.T) {
	// Across many independent runs, the fraction violating eps must stay
	// well under delta (here delta = 0.1, and in practice bounds are loose).
	sp := &coinSpace{
		lambdaHat:  0,
		exactRisk:  []float64{0, 0},
		approxRisk: []float64{0.3, 0.05},
		dim:        2,
	}
	const eps, delta = 0.08, 0.1
	bad := 0
	const runs = 60
	for r := 0; r < runs; r++ {
		est, err := Run(context.Background(), sp, Options{Epsilon: eps, Delta: delta, Workers: 2, Seed: int64(1000 + r)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sp.approxRisk {
			if math.Abs(est.Risks[i]-sp.trueRisk(i)) > eps {
				bad++
				break
			}
		}
	}
	if frac := float64(bad) / runs; frac > delta {
		t.Errorf("violations in %g of runs, budget %g", frac, delta)
	}
}

func TestRunAllMassExact(t *testing.T) {
	sp := &coinSpace{
		lambdaHat:  1,
		exactRisk:  []float64{0.7, 0.1},
		approxRisk: []float64{0.9, 0.9}, // must be ignored
		dim:        5,
	}
	est, err := Run(context.Background(), sp, Options{Epsilon: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 0 {
		t.Errorf("samples = %d, want 0", est.Samples)
	}
	for i, want := range sp.exactRisk {
		if est.Risks[i] != want {
			t.Errorf("risk[%d] = %g, want %g", i, est.Risks[i], want)
		}
	}
}

func TestRunEarlyStoppingOnLowVariance(t *testing.T) {
	// All-zero risks: variance 0, Bernstein certifies immediately, so the
	// adaptive run must stop far below the VC ceiling.
	sp := &coinSpace{
		lambdaHat:  0,
		exactRisk:  make([]float64, 3),
		approxRisk: make([]float64, 3),
		dim:        10, // large ceiling
	}
	est, err := Run(context.Background(), sp, Options{Epsilon: 0.01, Delta: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !est.StoppedEarly {
		t.Error("expected early stopping with zero variance")
	}
	if est.Samples >= est.NMax {
		t.Errorf("samples = %d should be < nmax = %d", est.Samples, est.NMax)
	}
}

func TestRunDisableAdaptiveDrawsFullBudget(t *testing.T) {
	sp := &coinSpace{
		lambdaHat:  0,
		exactRisk:  make([]float64, 2),
		approxRisk: []float64{0, 0},
		dim:        4,
	}
	est, err := Run(context.Background(), sp, Options{Epsilon: 0.05, Delta: 0.05, Seed: 2, DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.StoppedEarly {
		t.Error("adaptive disabled but StoppedEarly set")
	}
	if est.Samples != est.NMax {
		t.Errorf("samples = %d, want nmax = %d", est.Samples, est.NMax)
	}
}

func TestRunMaxSamplesCap(t *testing.T) {
	sp := &coinSpace{
		lambdaHat:  0,
		exactRisk:  make([]float64, 2),
		approxRisk: []float64{0.5, 0.5},
		dim:        8,
	}
	est, err := Run(context.Background(), sp, Options{Epsilon: 0.01, Delta: 0.01, Seed: 3, MaxSamples: 500, DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples > 500 {
		t.Errorf("samples = %d exceeds cap", est.Samples)
	}
}

func TestRunDeterministic(t *testing.T) {
	sp := &coinSpace{
		lambdaHat:  0.2,
		exactRisk:  []float64{0.01, 0.05},
		approxRisk: []float64{0.3, 0.6},
		dim:        3,
	}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Workers: 3, Seed: 77}
	a, err := Run(context.Background(), sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Risks {
		if a.Risks[i] != b.Risks[i] {
			t.Errorf("risk[%d]: %g vs %g (nondeterministic)", i, a.Risks[i], b.Risks[i])
		}
	}
	if a.Samples != b.Samples {
		t.Errorf("samples differ: %d vs %d", a.Samples, b.Samples)
	}
}

func TestAllocateDeltasSumsToBudget(t *testing.T) {
	pilot := []int64{0, 5, 50, 100}
	deltas := allocateDeltas(pilot, 100, 10000, 0.05, 0.01)
	var sum float64
	for _, d := range deltas {
		if d <= 0 || d >= 1 {
			t.Errorf("delta out of range: %g", d)
		}
		sum += d
	}
	if math.Abs(sum-0.01) > 1e-12 {
		t.Errorf("sum = %g, want 0.01", sum)
	}
}

func TestAllocateDeltasDegeneratePilot(t *testing.T) {
	// When DeltaForEpsilon returns ~0 everywhere the allocation must fall
	// back to a uniform split rather than dividing by zero.
	pilot := []int64{50, 50}
	deltas := allocateDeltas(pilot, 100, 10, 1e-9, 0.02) // eps' unreachably small
	var sum float64
	for _, d := range deltas {
		sum += d
	}
	if sum <= 0 || sum > 0.02+1e-12 {
		t.Errorf("fallback sum = %g", sum)
	}
}

func TestDirectSpace(t *testing.T) {
	ds := &DirectSpace{
		K:   2,
		Dim: 1,
		Make: func(seed int64) Sampler {
			rng := rand.New(rand.NewSource(seed))
			return SamplerFunc(func() []int32 {
				if rng.Float64() < 0.25 {
					return []int32{0}
				}
				return nil
			})
		},
	}
	est, err := Run(context.Background(), ds, Options{Epsilon: 0.05, Delta: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Risks[0]-0.25) > 0.05 {
		t.Errorf("risk[0] = %g, want ~0.25", est.Risks[0])
	}
	if math.Abs(est.Risks[1]) > 0.05 {
		t.Errorf("risk[1] = %g, want ~0", est.Risks[1])
	}
}
