package saphyra

import (
	"path/filepath"
	"testing"
)

// TestViewBuildServeRoundTrip exercises the public build-once/serve-many
// flow: build a view, serialize it, reopen it mmap-backed, and check that
// all three engines (betweenness, k-path, closeness) return results
// bitwise-identical to serving from the in-memory graph.
func TestViewBuildServeRoundTrip(t *testing.T) {
	g := Generate.BarabasiAlbert(800, 3, 12)
	targets := []Node{7, 100, 500, 777}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 5, Workers: 4}

	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i) * 3 // a non-identity external id space
	}
	path := filepath.Join(t.TempDir(), "g.sbcv")
	if err := BuildView(g, ids).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	view, err := OpenView(path)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	if got := view.Graph(); got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("mapped graph is %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	gotIDs := view.IDs()
	if len(gotIDs) != len(ids) {
		t.Fatalf("id map length %d, want %d", len(gotIDs), len(ids))
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("IDs[%d] = %d, want %d", i, gotIDs[i], ids[i])
		}
	}

	compare := func(name string, got, want *Result, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if got.Samples != want.Samples {
			t.Fatalf("%s: samples %d != %d", name, got.Samples, want.Samples)
		}
		for i := range want.Scores {
			if got.Scores[i] != want.Scores[i] {
				t.Fatalf("%s: score[%d] = %v, want %v", name, i, got.Scores[i], want.Scores[i])
			}
			if got.Rank[i] != want.Rank[i] {
				t.Fatalf("%s: rank[%d] = %d, want %d", name, i, got.Rank[i], want.Rank[i])
			}
		}
	}

	gotBC, err1 := view.Preprocess().RankSubset(targets, opt)
	wantBC, err2 := RankSubset(g, targets, opt)
	compare("bc", gotBC, wantBC, err1, err2)

	gotKP, err1 := view.RankKPath(targets, 4, opt)
	wantKP, err2 := RankKPath(g, targets, 4, opt)
	compare("kpath", gotKP, wantKP, err1, err2)

	gotCL, err1 := view.RankCloseness(targets, opt)
	wantCL, err2 := RankCloseness(g, targets, opt)
	compare("closeness", gotCL, wantCL, err1, err2)
}

// TestRankSubsetWorkerIndependent: the public API contract — fixed seed
// gives bitwise-identical rankings regardless of Workers.
func TestRankSubsetWorkerIndependent(t *testing.T) {
	g := Generate.PowerLawCluster(500, 3, 0.3, 3)
	targets := []Node{1, 9, 99, 420}
	run := func(workers int) *Result {
		res, err := RankSubset(g, targets, Options{Epsilon: 0.05, Delta: 0.05, Seed: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		for i := range ref.Scores {
			if got.Scores[i] != ref.Scores[i] {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", workers, i, got.Scores[i], ref.Scores[i])
			}
		}
	}
}
