// Quickstart: generate a small social-style network, rank a handful of
// nodes by betweenness centrality with an (epsilon, delta) guarantee,
// compare against the exact values — then demonstrate the
// build-once/serve-many flow: serialize the preprocessed view once and
// serve identical rankings from the mmap-backed file, the way a fleet of
// server processes would share one graph artifact.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"saphyra"
)

func main() {
	// A scale-free network of 2,000 nodes (Barabasi-Albert, 3 edges per new
	// node). Any undirected graph works; see saphyra.LoadEdgeList for files.
	g := saphyra.Generate.BarabasiAlbert(2000, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// The nodes we care about: a few arbitrary ids.
	targets := []saphyra.Node{7, 100, 500, 1000, 1500, 1999}

	// Rank them with a 0.01 additive-error guarantee at 99% confidence. A
	// Ranker answers any Query (measure x algorithm) on one graph, caching
	// the preprocessing across calls; the context can carry a deadline —
	// cancellation is all-or-nothing, so a returned result is always
	// complete and deterministic.
	ranker := saphyra.NewRanker(g)
	res, err := ranker.Rank(context.Background(), saphyra.Query{
		Measure: saphyra.Betweenness,
		Targets: targets,
		Epsilon: 0.01,
		Delta:   0.01,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated in %v using %d samples\n\n", res.Duration, res.Samples)
	fmt.Println("rank\tnode\tbetweenness")
	for i, v := range res.Nodes {
		fmt.Printf("%d\t%d\t%.6f\n", res.Rank[i], v, res.Scores[i])
	}

	// Exact ground truth for comparison (feasible at this scale).
	truth := saphyra.ExactBC(g, 0)
	truthA := make([]float64, len(res.Nodes))
	ids := make([]int32, len(res.Nodes))
	for i, v := range res.Nodes {
		truthA[i] = truth[v]
		ids[i] = int32(v)
	}
	fmt.Printf("\nSpearman rank correlation vs exact: %.3f\n",
		saphyra.Spearman(truthA, res.Scores, ids))

	// Build-once/serve-many: serialize the target-independent preprocessing
	// (the BlockCSR view, DESIGN.md section 7) and reopen it zero-copy. In
	// production the build runs once (`saphyra -save-view`) and any number
	// of serving processes mmap the same file; here we round-trip through a
	// temp file and confirm the served rankings are bitwise identical.
	dir, err := os.MkdirTemp("", "saphyra-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	viewPath := filepath.Join(dir, "graph.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		log.Fatal(err)
	}
	view, err := saphyra.OpenView(viewPath)
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()
	st, _ := os.Stat(viewPath)
	served, err := view.Ranker().Rank(context.Background(), saphyra.Query{
		Measure: saphyra.Betweenness,
		Targets: targets,
		Epsilon: 0.01,
		Delta:   0.01,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Scores {
		if served.Scores[i] != res.Scores[i] || served.Rank[i] != res.Rank[i] {
			log.Fatalf("view-served ranking diverged at %d", i)
		}
	}
	fmt.Printf("\nview round-trip: identical rankings served from %s (%d bytes, mmap-backed)\n",
		filepath.Base(viewPath), st.Size())

	// From here the production path is the CLIs: `saphyrad -view <file>`
	// serves this view over HTTP, and `saphyraload -view <file>` replays
	// deterministic traffic mixes against it, gating p99/p999, shed rate,
	// and bitwise response correctness (DESIGN.md section 12).
	fmt.Println("next: saphyrad -view <file> to serve it; saphyraload -view <file> to load-test it against SLOs")
}
