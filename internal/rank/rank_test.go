package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seqIDs(k int) []int32 {
	ids := make([]int32, k)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

func TestRanksDescendingWithTies(t *testing.T) {
	values := []float64{0.5, 0.9, 0.5, 0.1}
	ranks := Ranks(values, seqIDs(4))
	// 0.9 -> 1; the two 0.5 broken by id: index0 -> 2, index2 -> 3; 0.1 -> 4
	want := []int{2, 1, 3, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("ranks[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestRanksArePermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(50)
		values := make([]float64, k)
		for i := range values {
			values[i] = math.Floor(rng.Float64()*5) / 5 // force ties
		}
		ranks := Ranks(values, seqIDs(k))
		seen := make([]bool, k+1)
		for _, r := range ranks {
			if r < 1 || r > k || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	truth := []float64{5, 3, 8, 1}
	if rs := Spearman(truth, truth, seqIDs(4)); math.Abs(rs-1) > 1e-15 {
		t.Errorf("self correlation = %g, want 1", rs)
	}
	// any monotone transform preserves ranks
	est := []float64{50, 30, 80, 10}
	if rs := Spearman(truth, est, seqIDs(4)); math.Abs(rs-1) > 1e-15 {
		t.Errorf("monotone transform correlation = %g, want 1", rs)
	}
}

func TestSpearmanReversed(t *testing.T) {
	truth := []float64{4, 3, 2, 1}
	est := []float64{1, 2, 3, 4}
	if rs := Spearman(truth, est, seqIDs(4)); math.Abs(rs+1) > 1e-15 {
		t.Errorf("reversed correlation = %g, want -1", rs)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// truth ranks 1,2,3,4,5 ; estimate ranks 2,1,4,3,5 -> sum d^2 = 4
	// rs = 1 - 24/(5*24) = 0.8
	truth := []float64{50, 40, 30, 20, 10}
	est := []float64{40, 50, 20, 30, 10}
	if rs := Spearman(truth, est, seqIDs(5)); math.Abs(rs-0.8) > 1e-12 {
		t.Errorf("rs = %g, want 0.8", rs)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{2}, []int32{0}) != 1 {
		t.Error("k=1 should return 1")
	}
	if Spearman(nil, nil, nil) != 1 {
		t.Error("k=0 should return 1")
	}
}

func TestSpearmanRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(60)
		a := make([]float64, k)
		b := make([]float64, k)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		rs := Spearman(a, b, seqIDs(k))
		return rs >= -1-1e-12 && rs <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKendallTauPerfectAndReversed(t *testing.T) {
	truth := []float64{9, 7, 5, 3, 1}
	if tau := KendallTau(truth, truth, seqIDs(5)); math.Abs(tau-1) > 1e-15 {
		t.Errorf("tau = %g, want 1", tau)
	}
	rev := []float64{1, 3, 5, 7, 9}
	if tau := KendallTau(truth, rev, seqIDs(5)); math.Abs(tau+1) > 1e-15 {
		t.Errorf("tau = %g, want -1", tau)
	}
}

func TestKendallTauMatchesNaive(t *testing.T) {
	naive := func(truth, est []float64, ids []int32) float64 {
		rt := Ranks(truth, ids)
		re := Ranks(est, ids)
		k := len(rt)
		var conc, disc int
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				a := rt[i] - rt[j]
				b := re[i] - re[j]
				if a*b > 0 {
					conc++
				} else {
					disc++
				}
			}
		}
		return float64(conc-disc) / float64(k*(k-1)/2)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(40)
		a := make([]float64, k)
		b := make([]float64, k)
		for i := range a {
			a[i] = math.Floor(rng.Float64()*8) / 8
			b[i] = math.Floor(rng.Float64()*8) / 8
		}
		ids := seqIDs(k)
		return math.Abs(KendallTau(a, b, ids)-naive(a, b, ids)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDeviation(t *testing.T) {
	truth := []float64{4, 3, 2, 1}
	if d := Deviation(truth, truth, seqIDs(4)); d != 0 {
		t.Errorf("self deviation = %g, want 0", d)
	}
	// swap top two: displacement 1+1 over k^2=16
	est := []float64{3, 4, 2, 1}
	if d := Deviation(truth, est, seqIDs(4)); math.Abs(d-2.0/16) > 1e-15 {
		t.Errorf("deviation = %g, want %g", d, 2.0/16)
	}
}

func TestErrorSummaryBuckets(t *testing.T) {
	e := NewErrorSummary(25)
	e.Add(0, 0)     // true zero
	e.Add(0.5, 0)   // false zero (-100%)
	e.Add(0, 0.1)   // infinite error
	e.Add(0.5, 0.5) // 0%
	e.Add(0.5, 1.5) // +200% -> top bucket
	e.Add(0.4, 0.5) // +25%
	if e.TrueZeros != 1 || e.FalseZeros != 1 || e.InfErrors != 1 {
		t.Errorf("zeros: true=%d false=%d inf=%d", e.TrueZeros, e.FalseZeros, e.InfErrors)
	}
	if e.Total != 6 {
		t.Errorf("total = %d", e.Total)
	}
	if math.Abs(e.FractionTrueZeros()-1.0/6) > 1e-15 {
		t.Errorf("frac true zeros = %g", e.FractionTrueZeros())
	}
	if math.Abs(e.FractionFalseZeros()-1.0/6) > 1e-15 {
		t.Errorf("frac false zeros = %g", e.FractionFalseZeros())
	}
	var total int
	for _, b := range e.Buckets {
		total += b
	}
	if total != 5 { // all but the infinite error land in buckets
		t.Errorf("bucketed = %d, want 5", total)
	}
	if e.Buckets[len(e.Buckets)-1] != 1 {
		t.Error("+200% should land in the top bucket")
	}
	if e.Buckets[0] != 1 {
		t.Error("-100% should land in the bottom bucket")
	}
}

func TestErrorSummaryDefaultWidth(t *testing.T) {
	e := NewErrorSummary(0)
	if e.BucketWidth != 25 {
		t.Errorf("default width = %g, want 25", e.BucketWidth)
	}
}

func TestErrorSummaryEmpty(t *testing.T) {
	e := NewErrorSummary(25)
	if e.FractionTrueZeros() != 0 || e.FractionFalseZeros() != 0 {
		t.Error("empty summary fractions should be 0")
	}
}
