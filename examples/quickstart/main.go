// Quickstart: generate a small social-style network, rank a handful of
// nodes by betweenness centrality with an (epsilon, delta) guarantee, and
// compare against the exact values.
package main

import (
	"fmt"
	"log"

	"saphyra"
)

func main() {
	// A scale-free network of 2,000 nodes (Barabasi-Albert, 3 edges per new
	// node). Any undirected graph works; see saphyra.LoadEdgeList for files.
	g := saphyra.Generate.BarabasiAlbert(2000, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// The nodes we care about: a few arbitrary ids.
	targets := []saphyra.Node{7, 100, 500, 1000, 1500, 1999}

	// Rank them with a 0.01 additive-error guarantee at 99% confidence.
	res, err := saphyra.RankSubset(g, targets, saphyra.Options{
		Epsilon: 0.01,
		Delta:   0.01,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated in %v using %d samples\n\n", res.Duration, res.Samples)
	fmt.Println("rank\tnode\tbetweenness")
	for i, v := range res.Nodes {
		fmt.Printf("%d\t%d\t%.6f\n", res.Rank[i], v, res.Scores[i])
	}

	// Exact ground truth for comparison (feasible at this scale).
	truth := saphyra.ExactBC(g, 0)
	truthA := make([]float64, len(res.Nodes))
	ids := make([]int32, len(res.Nodes))
	for i, v := range res.Nodes {
		truthA[i] = truth[v]
		ids[i] = int32(v)
	}
	fmt.Printf("\nSpearman rank correlation vs exact: %.3f\n",
		saphyra.Spearman(truthA, res.Scores, ids))
}
