// Command saphyraload replays deterministic traffic mixes against the
// saphyrad serving layer and gates the result on per-mix SLOs — the
// load-generation half of the reproducible experiment harness
// (internal/loadgen, DESIGN.md section 12).
//
// Two modes:
//
//	saphyraload -view net.sbcv                     # in-process server
//	saphyraload -view net.sbcv -base http://host:8372   # live daemon
//
// With no -view, a deterministic synthetic network is built, so
// `saphyraload` alone produces a meaningful serving benchmark. Each named
// mix (hit-dominated, miss-heavy, reload-storm; -mix selects one, default
// all) is expanded from one seed into a byte-identical open-loop request
// schedule, replayed, and reported: p50/p99/p999 served latency, hit and
// shed and error rates, and bitwise verification of every -verify-every'th
// 200 against the library reference for its reported (eps, delta, seed)
// contract. Results land in versioned JSON (-out, default
// BENCH_serving.json; scripts/bench.sh uploads it in CI) and the exit
// status is non-zero when any mix violates its SLO or any sampled response
// is not bitwise-equal to the reference.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"saphyra"
	"saphyra/internal/loadgen"
	"saphyra/internal/serve"
)

type output struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	CPUs   int    `json:"cpus"`

	View  string            `json:"view"`
	Nodes int               `json:"nodes"`
	Edges int64             `json:"edges"`
	Seed  int64             `json:"seed"`
	Mixes []*loadgen.Report `json:"mixes"`
}

func main() {
	var (
		viewPath    = flag.String("view", "", "serialized view file to load against (default: build a synthetic network)")
		base        = flag.String("base", "", "base URL of a live daemon (default: serve -view in-process)")
		mixName     = flag.String("mix", "all", "mix to replay: hit-dominated | miss-heavy | reload-storm | all")
		rate        = flag.Float64("rate", 0, "override the mix's offered rate (req/s; 0 = mix default)")
		duration    = flag.Duration("duration", 0, "override the mix's scheduled span (0 = mix default)")
		seed        = flag.Int64("seed", 1, "schedule seed; one seed yields a byte-identical request schedule")
		speed       = flag.Float64("speed", 1, "schedule-clock compression factor (2 = replay twice as fast)")
		verifyEvery = flag.Int("verify-every", 8, "bitwise-verify every Nth scheduled request's 200 response (0 = off)")
		noWarm      = flag.Bool("no-warm", false, "skip pre-firing the cacheable working set before the clock starts")
		out         = flag.String("out", "BENCH_serving.json", "JSON report path (\"-\" = stdout)")

		synthNodes  = flag.Int("synth-nodes", 2000, "synthetic network size when no -view is given")
		maxInFlight = flag.Int("max-inflight", 0, "in-process server: concurrent computations admitted (0 = default)")
		timeout     = flag.Duration("timeout", 10*time.Second, "in-process server: default per-request compute deadline")
		slowMs      = flag.Int("slow-query-ms", 0, "in-process server: log any request slower than this many ms as structured JSON on stderr (0 = disabled)")
	)
	flag.Parse()
	if err := run(*viewPath, *base, *mixName, *rate, *duration, *seed, *speed,
		*verifyEvery, !*noWarm, *out, *synthNodes, *maxInFlight, *timeout,
		time.Duration(*slowMs)*time.Millisecond); err != nil {
		fmt.Fprintln(os.Stderr, "saphyraload:", err)
		os.Exit(1)
	}
}

func run(viewPath, base, mixName string, rate float64, duration time.Duration,
	seed int64, speed float64, verifyEvery int, warm bool, out string,
	synthNodes, maxInFlight int, timeout, slowQuery time.Duration) error {

	// Resolve the view: given, or synthesized deterministically.
	if viewPath == "" {
		dir, err := os.MkdirTemp("", "saphyraload")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		viewPath = filepath.Join(dir, "synth.sbcv")
		g := saphyra.Generate.BarabasiAlbert(synthNodes, 4, 7)
		if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saphyraload: built synthetic view (%d nodes) at %s\n", synthNodes, viewPath)
	}
	view, err := saphyra.OpenView(viewPath)
	if err != nil {
		return err
	}
	ids := viewIDs(view)
	nodes := view.Graph().NumNodes()
	edges := view.Graph().NumEdges()
	view.Close()

	// Resolve the target: a live daemon, or an in-process server on a
	// loopback listener (a real HTTP hop, so in-process numbers include the
	// same transport cost the daemon pays).
	if base == "" {
		srv, err := serve.New(viewPath, serve.Config{
			MaxInFlight:        maxInFlight,
			DefaultTimeout:     timeout,
			SlowQueryThreshold: slowQuery,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "saphyraload: serving %s in-process on %s\n", viewPath, base)
	}

	var verifier *loadgen.Verifier
	if verifyEvery > 0 {
		if verifier, err = loadgen.NewVerifier(viewPath); err != nil {
			return err
		}
		defer verifier.Close()
	}

	var mixes []loadgen.Mix
	if mixName == "all" {
		mixes = loadgen.Mixes()
	} else {
		m, err := loadgen.ByName(mixName)
		if err != nil {
			return err
		}
		mixes = []loadgen.Mix{m}
	}

	rep := &output{
		Schema: "saphyra/bench-serving/v1",
		Date:   time.Now().UTC().Format(time.RFC3339),
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		View:   viewPath,
		Nodes:  nodes,
		Edges:  edges,
		Seed:   seed,
	}
	failed := false
	for _, m := range mixes {
		m = m.Scale(rate, duration)
		sched, err := loadgen.Build(m, ids, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saphyraload: %s: %d requests over %v (rate %.0f/s)\n",
			m.Name, sched.Requests(), m.Duration, m.Rate)
		r, err := loadgen.Run(context.Background(), sched, loadgen.Options{
			Base: base, Speed: speed, Warm: warm,
			VerifyEvery: verifyEvery, Verifier: verifier,
		})
		if err != nil {
			return fmt.Errorf("mix %s: %w", m.Name, err)
		}
		rep.Mixes = append(rep.Mixes, r)
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"saphyraload: %s: %s  p50 %.2fms p99 %.2fms p999 %.2fms  hit %.0f%% shed %.1f%% degraded %.1f%% err %.1f%%  verified %d (%d failed)\n",
			m.Name, status, r.P50Ms, r.P99Ms, r.P999Ms,
			100*r.HitRate, 100*r.ShedRate, 100*r.DegradedRate, 100*r.ErrorRate,
			r.Verified, r.VerifyFailed)
		for _, v := range r.SLOViolations {
			fmt.Fprintf(os.Stderr, "saphyraload: %s: SLO violation: %s\n", m.Name, v)
		}
		for _, v := range r.VerifyErrors {
			fmt.Fprintf(os.Stderr, "saphyraload: %s: verify: %s\n", m.Name, v)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	} else {
		fmt.Fprintf(os.Stderr, "saphyraload: wrote %s\n", out)
	}
	if failed {
		return fmt.Errorf("one or more mixes failed their SLO or bitwise verification")
	}
	return nil
}

// viewIDs returns the view's original id space (identity when dense).
func viewIDs(v *saphyra.View) []int64 {
	if ids := v.IDs(); ids != nil {
		out := make([]int64, len(ids))
		copy(out, ids)
		return out
	}
	n := v.Graph().NumNodes()
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
