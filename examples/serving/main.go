// Serving demonstrates the full production topology in one process: build
// a view artifact once, stand up the saphyrad serving stack on a loopback
// listener, and drive it with the resilient workload client — subset
// ranking with the deterministic result cache, the precomputed top-k index,
// per-client quotas with honored Retry-After, an atomic hot reload, and the
// graceful-degradation ladder, all with bitwise-reproducible scores.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"saphyra"
	"saphyra/internal/serve"
	"saphyra/internal/workload"
)

func main() {
	// Build once: a synthetic social network persisted as a view artifact —
	// in production this is `saphyra -graph net.txt -save-view net.sbcv`.
	// The writer publishes atomically (temp file + rename + fsync) with a
	// whole-file checksum, so a served artifact is never torn or bit-rotted.
	g := saphyra.Generate.PowerLawCluster(3000, 4, 0.2, 11)
	dir, err := os.MkdirTemp("", "saphyra-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	viewPath := filepath.Join(dir, "net.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(viewPath)
	fmt.Printf("built view: %d nodes, %d edges, %d bytes on disk\n",
		g.NumNodes(), g.NumEdges(), st.Size())

	// Serve many: the saphyrad stack (cmd/saphyrad wires the same package
	// to flags and signals) on an ephemeral loopback port. Quotas on so the
	// client's Retry-After handling has something to push against.
	srv, err := serve.New(viewPath, serve.Config{
		ClientQPS: 5, ClientBurst: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("saphyrad serving on %s (generation %d)\n\n", base, srv.Generation())

	// The workload client is the reference well-behaved caller: identified
	// traffic, bounded retries, server backpressure hints honored exactly.
	client := &workload.Client{Base: base, ClientID: "example"}
	ctx := context.Background()

	// Ranking the same subset twice: the second answer comes from the
	// deterministic cache — same bits, no computation.
	// eps 0.01 makes the compute real work (tens of milliseconds), so the
	// deadline demos below have something to cut short.
	req := serve.RankRequest{
		Method:  "saphyra",
		Targets: []int64{17, 99, 1024, 2048},
		Eps:     0.01, Delta: 0.01, Seed: 7,
	}
	first, err := client.Rank(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	second, err := client.Rank(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("POST /v1/rank, method=saphyra, 4 targets:")
	for i := range first.Nodes {
		fmt.Printf("  rank %d  node %-5d score %.6g\n", first.Ranks[i], first.Nodes[i], first.Scores[i])
	}
	fmt.Printf("first:  cached=%v samples=%d\n", first.Cached, first.Samples)
	fmt.Printf("second: cached=%v identical=%v\n\n", second.Cached, identical(first, second))

	// The top-k index was precomputed at load time for every method.
	for _, method := range []string{"saphyra", "kpath", "closeness"} {
		top, err := client.TopK(ctx, method, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET /v1/topk method=%-9s (cached=%v):", method, top.Cached)
		for i := range top.Nodes {
			fmt.Printf("  #%d node %d (%.4g)", top.Ranks[i], top.Nodes[i], top.Scores[i])
		}
		fmt.Println()
	}

	// Quota backpressure: a burst past the token bucket gets 429 with the
	// exact token-refill time as Retry-After; the client sleeps that long
	// and succeeds — no guessing, no hammering.
	fmt.Println("\nburst of 6 distinct queries against a 3-token bucket (5 tokens/s):")
	for i := 0; i < 6; i++ {
		r := req
		r.Seed = int64(100 + i)
		if _, err := client.Rank(ctx, r); err != nil {
			log.Fatal(err)
		}
	}
	cs := client.Stats()
	fmt.Printf("all 6 served; client retried %d time(s), sleeping %v total as directed by Retry-After\n",
		cs.Retries, cs.Waited.Round(time.Millisecond))

	// Hot reload: remap the artifact under the next generation. In-flight
	// queries drain on the old mapping; new ones see generation 2 — and,
	// the file being unchanged, bitwise-identical scores. The purged
	// generation-1 results move to the stale store, arming the degradation
	// ladder's cheapest rung.
	resp, err := http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nafter POST /admin/reload: generation %d\n", srv.Generation())

	// Graceful degradation: this client would rather have a slightly worse
	// answer than an error. The reload emptied the generation-2 cache, so
	// req needs a fresh compute — and Timeout-Ms 1 makes that impossible
	// (the engines cancel at their next checkpoint — nothing partial
	// exists). Degrade-Ms opts into the ladder, and the service answers
	// from the retired generation's cache: flagged, generation reported,
	// bitwise-identical to what generation 1 served when it was current.
	degrading := &workload.Client{Base: base, ClientID: "example", TimeoutMs: 1, DegradeMs: 2000}
	deg, err := degrading.Rank(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with Timeout-Ms: 1 and Degrade-Ms: 2000: degraded=%v generation=%d eps=%g identical=%v\n",
		deg.Degraded, deg.Generation, deg.Eps, identical(first, deg))

	// Given time, the same request recomputes exactly under generation 2 —
	// the file is unchanged, so the bits are too.
	third, err := client.Rank(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query, no deadline: generation %d cached=%v (keys carry the generation), identical=%v\n",
		third.Generation, third.Cached, identical(first, third))

	// Without the opt-in the same impossible deadline is a hard 504, which
	// the client retries and then surfaces as a typed error.
	strict := &workload.Client{Base: base, ClientID: "strict", TimeoutMs: 1,
		MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond}
	hard := req
	hard.Seed = 404 // uncached: forces a real (and here impossible) compute
	_, err = strict.Rank(ctx, hard)
	var se *workload.StatusError
	if errors.As(err, &se) {
		fmt.Printf("same deadline without Degrade-Ms: status %d after retries (deadline-exceeded compute is canceled, never partial)\n", se.Code)
	} else if err != nil {
		fmt.Printf("same deadline without Degrade-Ms: %v\n", err)
	}

	status := getJSON[serve.Statusz](base + "/statusz")
	fmt.Printf("\nstatusz: gen=%d cache{hits=%d misses=%d} requests{rank=%d quota_denied=%d deadline=%d} degraded{coarse=%d stale=%d} open_mappings=%d\n",
		status.Generation, status.Cache.Hits, status.Cache.Misses,
		status.Requests.Rank, status.Requests.QuotaDenied, status.Requests.DeadlineExceeded,
		status.Degraded, status.StaleServed, status.OpenMappings)

	// The same counters in Prometheus text format, ready to scrape.
	mresp, err := http.Get(base + "/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\nGET /metricsz (excerpt):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "saphyra_requests_total") ||
			strings.HasPrefix(line, "saphyra_request_errors_total{reason=\"quota\"}") ||
			strings.HasPrefix(line, "saphyra_degraded_total") ||
			strings.HasPrefix(line, "saphyra_generation") {
			fmt.Println("  " + line)
		}
	}
}

func getJSON[T any](url string) *T {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %s", url, resp.Status)
	}
	out := new(T)
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
	return out
}

func identical(a, b *serve.RankResponse) bool {
	if len(a.Scores) != len(b.Scores) {
		return false
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			return false
		}
	}
	return true
}
