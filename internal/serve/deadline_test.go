package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/params"
)

// postRankTimeout posts a rank request with a Timeout-Ms header.
func postRankTimeout(t testing.TB, h http.Handler, req RankRequest, timeoutMs string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body))
	if timeoutMs != "" {
		r.Header.Set("Timeout-Ms", timeoutMs)
	}
	h.ServeHTTP(w, r)
	return w
}

// TestServeDeadline504 is the end-to-end deadline gate: an impossible
// Timeout-Ms budget on an uncached computation returns 504, bumps the
// deadline counter, frees its admission slot (the next request computes
// normally), and caches nothing partial — the follow-up with no deadline
// must recompute and succeed with Cached=false.
func TestServeDeadline504(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(500, 3, 31)
	s, ids := newTestServer(t, g, Config{MaxInFlight: 1, DisablePrecompute: true})
	req := RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50], ids[400]},
		Eps: 0.004, Delta: 0.05, Seed: 77, // tight eps: a computation that outlives 1ms
	}

	w := postRankTimeout(t, s.Handler(), req, "1")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline request got %d, want 504 (%s)", w.Code, w.Body.String())
	}
	if got := s.m.deadlines.Value(); got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}

	// The admission slot must come back: wait for the abandoned flight to
	// observe its cancellation and unwind.
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.inFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slot never freed after deadline (inFlight=%d)", s.adm.inFlight())
		}
		time.Sleep(time.Millisecond)
	}

	// Same query, no deadline: must compute from scratch (nothing partial
	// was cached) and succeed.
	resp, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("follow-up got %d, want 200", code)
	}
	if resp.Cached {
		t.Fatal("follow-up was a cache hit: the canceled flight leaked a result")
	}
	if len(resp.Scores) != 3 {
		t.Fatalf("follow-up returned %d scores", len(resp.Scores))
	}
}

// TestServeTimeoutMsInvalid: a malformed Timeout-Ms is the caller's fault.
func TestServeTimeoutMsInvalid(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(120, 2, 5)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[1]}, Eps: 0.3, Delta: 0.1}
	for _, bad := range []string{"abc", "-5", "0"} {
		if w := postRankTimeout(t, s.Handler(), req, bad); w.Code != http.StatusBadRequest {
			t.Errorf("Timeout-Ms=%q got %d, want 400", bad, w.Code)
		}
	}
}

// TestFlightSurvivesLeaderCancel pins the singleflight semantics the
// detached-flight design exists for: the leader's deadline firing must NOT
// kill the computation a follower with a longer budget is waiting on — the
// leader detaches with a cancellation, the flight keeps running, and the
// follower receives the full result. Only when the LAST waiter leaves is
// the flight context canceled.
func TestFlightSurvivesLeaderCancel(t *testing.T) {
	c := newCache(4)
	key := testKey(1, 'f')
	started := make(chan struct{})
	release := make(chan struct{})
	flightCtxErr := make(chan error, 1)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, led, err := c.do(leaderCtx, key, func(fctx context.Context) (*payload, error) {
			close(started)
			<-release
			flightCtxErr <- fctx.Err()
			return &payload{samples: 7}, nil
		})
		if !led {
			t.Error("first requester did not lead")
		}
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan *payload, 1)
	go func() {
		p, led, err := c.do(context.Background(), key, func(context.Context) (*payload, error) {
			t.Error("follower must not compute")
			return nil, nil
		})
		if led || err != nil {
			t.Errorf("follower: led=%v err=%v", led, err)
		}
		followerDone <- p
	}()
	for c.collapsed.Load() != 1 {
		time.Sleep(100 * time.Microsecond) // until the follower has joined
	}

	// The leader abandons; the follower remains, so the flight must not be
	// canceled.
	cancelLeader()
	if err := <-leaderDone; err == nil || !params.IsCanceled(err) {
		t.Fatalf("abandoning leader got %v, want typed cancellation", err)
	}
	close(release)
	if err := <-flightCtxErr; err != nil {
		t.Fatalf("flight ctx was canceled while a follower still waited: %v", err)
	}
	p := <-followerDone
	if p == nil || p.samples != 7 {
		t.Fatalf("follower got %+v, want the full result", p)
	}
	// The completed result is cached for everyone else.
	if got, led, err := c.do(context.Background(), key, nil); led || err != nil || got.samples != 7 {
		t.Fatalf("post-flight lookup: led=%v err=%v", led, err)
	}
}

// TestFlightCanceledWhenLastWaiterLeaves: with no followers, the leader's
// abandonment cancels the flight context — that is what unwinds the engines
// and frees the admission slot.
func TestFlightCanceledWhenLastWaiterLeaves(t *testing.T) {
	c := newCache(4)
	key := testKey(1, 'l')
	started := make(chan struct{})
	canceledObserved := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.do(ctx, key, func(fctx context.Context) (*payload, error) {
			close(started)
			<-fctx.Done() // an engine checkpoint observing the cancellation
			close(canceledObserved)
			return nil, &params.CanceledError{Cause: context.Cause(fctx)}
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case <-canceledObserved:
	case <-time.After(10 * time.Second):
		t.Fatal("flight ctx never canceled after the last waiter left")
	}
	if err := <-done; err == nil || !params.IsCanceled(err) {
		t.Fatalf("got %v, want typed cancellation", err)
	}
	// The error was not cached: the key computes cleanly afterwards.
	if _, led, err := c.do(context.Background(), key, func(context.Context) (*payload, error) {
		return &payload{samples: 1}, nil
	}); !led || err != nil {
		t.Fatalf("key poisoned after canceled flight: led=%v err=%v", led, err)
	}
	if !errors.Is(context.Cause(ctx), context.Canceled) {
		t.Fatal("sanity: cause should be context.Canceled")
	}
}

// TestServeMetricsz: the Prometheus endpoint mirrors the /statusz counters,
// including the new deadline/cancellation series.
func TestServeMetricsz(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(150, 2, 8)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})

	// One successful rank and one deadline expiry to move the counters.
	if _, code := postRank(t, s.Handler(), RankRequest{Method: MethodCloseness, Targets: []int64{ids[1], ids[2]}, Eps: 0.2, Delta: 0.1}); code != http.StatusOK {
		t.Fatalf("rank failed: %d", code)
	}
	postRankTimeout(t, s.Handler(), RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[4]}, Eps: 0.004, Delta: 0.05, Seed: 9,
	}, "1")

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metricsz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metricsz content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`saphyra_requests_total{endpoint="rank"} 2`,
		`saphyra_request_errors_total{reason="deadline"} 1`,
		`saphyra_cache_events_total{kind="miss"}`,
		"# TYPE saphyra_requests_total counter",
		"# TYPE saphyra_generation gauge",
		"saphyra_generation 1",
		"saphyra_workers_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q\n%s", want, body)
		}
	}
}

// TestServeTimeoutMsCannotExtendServerBound: the header may only tighten
// the operator's DefaultTimeout — a client asking for hours on a server
// bounded to ~1ms still gets 504, so compute slots cannot be pinned past
// the configured limit. Overflow-scale header values must clamp, not wrap:
// on a server with no default, a near-int64-max Timeout-Ms behaves as
// unbounded (request succeeds) rather than wrapping to an instant 504 or
// to no deadline when a finite one was requested.
func TestServeTimeoutMsCannotExtendServerBound(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(500, 3, 41)
	bounded, ids := newTestServer(t, g, Config{DefaultTimeout: time.Millisecond, DisablePrecompute: true})
	req := RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[7], ids[70]},
		Eps: 0.004, Delta: 0.05, Seed: 13, // outlives 1ms by a wide margin
	}
	if w := postRankTimeout(t, bounded.Handler(), req, "360000000"); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("huge Timeout-Ms on a bounded server got %d, want 504", w.Code)
	}

	unbounded, ids2 := newTestServer(t, g, Config{DisablePrecompute: true})
	easy := RankRequest{Method: MethodCloseness, Targets: []int64{ids2[1], ids2[2]}, Eps: 0.2, Delta: 0.1}
	for _, ms := range []string{"18446744073710", "9223372036854775807"} {
		if w := postRankTimeout(t, unbounded.Handler(), easy, ms); w.Code != http.StatusOK {
			t.Fatalf("overflow-scale Timeout-Ms %s wrapped: got %d, want 200", ms, w.Code)
		}
	}
}
