// Package serve is the ranking service layer over a persisted BlockCSR
// view: the request lifecycle behind cmd/saphyrad (DESIGN.md section 8).
// It owns everything between an HTTP request and an engine call —
//
//   - validation and canonicalization: requests become query.Query values
//     (the library's unified query model); Query.Validate's typed
//     internal/params errors split 400 (caller fault) from 500 (server
//     fault), and Query.Key is the one cache-key digest — the serving layer
//     no longer defines any canonicalization of its own;
//   - deadlines and cancellation: each request carries a context
//     (server-default deadline, per-request Timeout-Ms header, client
//     disconnect); the engines poll it at their round/chunk checkpoints
//     with an all-or-nothing contract, and an expired request returns 504
//     (499 for a vanished client) with its admission slot freed;
//   - admission control: at most MaxInFlight computations run at once with a
//     bounded wait queue; excess load is shed immediately with 429 instead
//     of queueing without bound;
//   - a per-request worker budget (sched.Budget): each computation is
//     granted a bounded share of a fixed worker-slot pool, so one
//     full-network query cannot starve concurrent subset queries — safe to
//     do opportunistically because results never depend on the worker count;
//   - a deterministic result cache with singleflight collapsing, keyed by
//     (view generation, Query.Key) — sound because every estimate is a pure
//     function of exactly those inputs. Flights run detached: a leader whose
//     deadline fires abandons the flight, but the computation keeps running
//     for its remaining followers and is canceled only when the last waiter
//     leaves;
//   - a top-k index per method: the full-network ranking computed once per
//     (generation, options), cached, and sliced by GET /v1/topk;
//   - atomic hot reload: POST /admin/reload (or SIGHUP in the daemon) maps
//     the view file afresh under the next generation, swaps it in, and
//     retires the old bicomp.Handle — which unmaps only after the last
//     in-flight query on it drains, per the mmap lifetime rules of
//     DESIGN.md section 7.
//
// Telemetry rides on internal/obs: every counter lives in a metrics
// Registry rendered by /metricsz (Prometheus text format, with latency and
// cost histograms), request handlers thread trace spans through admission,
// cache, flight, and the compute layers (returned in the response envelope
// on ?trace=1 or a Trace-Id header), and requests slower than
// Config.SlowQueryThreshold emit a structured JSON slow-query line with
// the full span tree. Instrumentation is strictly read-only: spans never
// reach a result bit, and with no trace active each instrumented site is
// one atomic load.
//
// The API surface is JSON over HTTP: POST /v1/rank, GET /v1/topk,
// GET /healthz (liveness: 200 once listening), GET /readyz (readiness:
// 503 until a view generation is loaded), GET /statusz, GET /metricsz
// (Prometheus text format), POST /admin/reload.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"saphyra/internal/bicomp"
	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
	"saphyra/internal/obs"
	"saphyra/internal/params"
	"saphyra/internal/query"
	"saphyra/internal/sched"
)

// Config tunes the service. The zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently running computations (cache misses).
	// Cache hits bypass admission entirely. Default 4.
	MaxInFlight int
	// MaxQueue bounds computations waiting for an in-flight slot; arrivals
	// beyond it are shed with 429. Default 4*MaxInFlight.
	MaxQueue int
	// TotalWorkers is the worker-slot pool shared by every computation.
	// Default GOMAXPROCS.
	TotalWorkers int
	// RequestWorkers caps the slots one computation may take from the pool
	// (the per-request budget). Default max(1, TotalWorkers/2).
	RequestWorkers int
	// CacheEntries bounds the result cache. Default 1024.
	CacheEntries int

	// FastLaneSlots is the compute-slot pool reserved for tiny queries (an
	// estimated cost at most FastLaneCost, see queryCost): tiny queries try
	// this pool first and fall back to the shared pool, while expensive
	// queries never touch it — so a burst of full-network jobs saturating
	// MaxInFlight cannot push tiny-query latency to the shed horizon.
	// Default 2; negative disables the lane.
	FastLaneSlots int
	// FastLaneCost is the queryCost threshold below which a query is tiny.
	// Default 1<<14.
	FastLaneCost float64

	// ClientQPS enables per-client token-bucket quotas: each Client-Id
	// refills at ClientQPS tokens/second up to ClientBurst, one token per
	// request. Zero (the default) disables quotas.
	ClientQPS float64
	// ClientBurst is the bucket capacity. Default max(1, 2*ClientQPS).
	ClientBurst float64

	// DegradeEpsFactor scales a request's epsilon for the coarsened-eps
	// degradation rung (opt-in via the Degrade-Ms header): the degraded
	// recompute runs at min(eps*DegradeEpsFactor, DegradeMaxEps). Default 4.
	DegradeEpsFactor float64
	// DegradeMaxEps caps the coarsened epsilon. Default 0.25.
	DegradeMaxEps float64
	// DefaultDegradeMs opts every rank request into the degradation ladder
	// with this budget (milliseconds) when the request carries no Degrade-Ms
	// header — the operator-side policy knob. Zero means degradation is
	// purely request-driven.
	DefaultDegradeMs int
	// DisableStale removes the stale rung from the ladder: degraded requests
	// then only ever get a coarsened recompute, never a prior generation.
	DisableStale bool

	// Request defaults, applied when a field is absent from the request.
	DefaultEpsilon float64 // default 0.05
	DefaultDelta   float64 // default 0.01
	DefaultSeed    int64   // default 1
	DefaultK       int     // k-path walk length, default 3

	// DefaultTimeout is the per-request compute deadline. A request's
	// Timeout-Ms header can only tighten it (the effective deadline is the
	// minimum of the two), never extend it past the operator's bound. Zero
	// means no server-side deadline; the header then applies alone. On
	// expiry the request gets 504 and its computation is canceled at the
	// next engine checkpoint (unless other requests still wait on the same
	// flight).
	DefaultTimeout time.Duration

	// DisablePrecompute skips warming the per-method top-k index at load
	// and reload time; the index is then built lazily by the first
	// /v1/topk request per method.
	DisablePrecompute bool

	// SlowQueryThreshold arms the slow-query log: every request whose wall
	// time meets or exceeds it emits one structured JSON line (span tree,
	// query key, generation, outcome) to SlowQueryLog. Zero (the default)
	// disables the log — and with it the per-request tracing it requires,
	// so the zero-config server records no spans at all.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (one JSON object per line).
	// Defaults to os.Stderr when SlowQueryThreshold is set. Writes are
	// serialized by the server.
	SlowQueryLog io.Writer

	// PeerFill, when set, is consulted on a cache miss before computing:
	// the cluster tier's hook for asking the key's home peer whether it
	// already holds the result (GET /internal/cache on the peer). It runs
	// inside the singleflight flight — so a cold key costs at most one peer
	// round-trip per flight, never per request — and before admission,
	// because adopting a peer's bytes needs no compute slot. Returning a
	// response with the right generation and aligned ranking arrays
	// short-circuits the computation; anything else (miss, wrong
	// generation, malformed shape) falls through to the local engines.
	// Sharing bytes across replicas is sound for exactly one reason: every
	// result is a pure function of (generation, Query.Key), so the peer's
	// bytes are the bytes this server would have computed.
	PeerFill func(ctx context.Context, gen uint64, key [sha256.Size]byte) (*RankResponse, bool)
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RequestWorkers <= 0 {
		c.RequestWorkers = max(1, c.TotalWorkers/2)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.FastLaneSlots == 0 {
		c.FastLaneSlots = 2
	}
	if c.FastLaneSlots < 0 {
		c.FastLaneSlots = 0 // explicit disable
	}
	if c.FastLaneCost <= 0 {
		c.FastLaneCost = 1 << 14
	}
	if c.DegradeEpsFactor <= 1 {
		c.DegradeEpsFactor = 4
	}
	if c.DegradeMaxEps <= 0 {
		c.DegradeMaxEps = 0.25
	}
	if c.DefaultEpsilon == 0 {
		c.DefaultEpsilon = 0.05
	}
	if c.DefaultDelta == 0 {
		c.DefaultDelta = 0.01
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.DefaultK == 0 {
		c.DefaultK = 3
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
}

// Methods served over HTTP. "saphyra" is betweenness (SaPHyRa_bc); the two
// companion estimators complete the persisted view's consumer set.
const (
	MethodSaPHyRa   = "saphyra"
	MethodKPath     = "kpath"
	MethodCloseness = "closeness"
)

var methods = []string{MethodSaPHyRa, MethodKPath, MethodCloseness}

// measureOf maps a wire method name onto the query model's measure axis.
func measureOf(method string) (query.Measure, error) {
	switch method {
	case MethodSaPHyRa:
		return query.Betweenness, nil
	case MethodKPath:
		return query.KPath, nil
	case MethodCloseness:
		return query.Closeness, nil
	}
	return 0, params.Errorf("method", "unknown method %q (want saphyra | kpath | closeness)", method)
}

// loadedView is one generation of the serving state: the mapped view with
// its lifetime handle plus everything derived from it once per load — the
// Ranker (with its betweenness preprocessing built eagerly) and the
// original-id -> dense-id reverse map.
type loadedView struct {
	handle *bicomp.Handle
	g      *graph.Graph
	ids    []int64              // dense -> original; nil = identity
	back   map[int64]graph.Node // original -> dense; nil = identity
	ranker *query.Ranker
	loaded time.Time
}

func (lv *loadedView) gen() uint64 { return lv.handle.Gen() }

// dense maps an original id to its dense node, reporting existence.
func (lv *loadedView) dense(raw int64) (graph.Node, bool) {
	if lv.back == nil {
		return graph.Node(raw), raw >= 0 && raw < int64(lv.g.NumNodes())
	}
	v, ok := lv.back[raw]
	return v, ok
}

// original maps a dense node back to its original id.
func (lv *loadedView) original(v graph.Node) int64 {
	if lv.ids == nil {
		return int64(v)
	}
	return lv.ids[v]
}

// Server is the ranking service. Create with New, expose via Handler, hot
// reload with Reload, shut down with Close.
type Server struct {
	cfg      Config
	viewPath string

	cur      atomic.Pointer[loadedView]
	reloadMu sync.Mutex // serializes Reload; swaps stay atomic for readers

	cache  *cache
	budget *sched.Budget
	adm    *admission
	quota  *quotas
	mux    *http.ServeMux
	start  time.Time

	// computeEWMA is the exponentially weighted mean compute seconds
	// (float64 bits), fed by every finished flight and read by the
	// queue-depth-derived Retry-After.
	computeEWMA atomic.Uint64

	// m holds every request counter and histogram, registered on an
	// obs.Registry rendered by /metricsz (see metrics.go).
	m      *metrics
	slowMu sync.Mutex // serializes slow-query log writes
}

// New maps the view file, runs the per-process preprocessing, warms the
// top-k index (unless disabled), and returns a Server ready to accept
// requests as generation 1.
func New(viewPath string, cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:      cfg,
		viewPath: viewPath,
		cache:    newCache(cfg.CacheEntries),
		budget:   sched.NewBudget(cfg.TotalWorkers, cfg.RequestWorkers),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.FastLaneSlots),
		quota:    newQuotas(cfg.ClientQPS, cfg.ClientBurst),
		start:    time.Now(),
	}
	s.m = newMetrics(s)
	s.cache.onFlight = func(joined int64) { s.m.flightFanIn.ObserveN(joined) }
	lv, err := s.load(1)
	if err != nil {
		return nil, err
	}
	s.cur.Store(lv)
	if !cfg.DisablePrecompute {
		s.precomputeTopK(lv)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/rank", s.handleRank)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /internal/cache", s.handleInternalCache)
	return s, nil
}

// Handler returns the HTTP handler for the JSON API.
func (s *Server) Handler() http.Handler { return s.mux }

// Generation returns the current view generation.
func (s *Server) Generation() uint64 { return s.cur.Load().gen() }

// Close retires the current view; in-flight queries drain before the
// mapping is released. The server must not serve requests afterwards.
func (s *Server) Close() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if lv := s.cur.Load(); lv != nil {
		lv.handle.Retire()
	}
	return nil
}

// load maps viewPath and builds the per-generation derived state.
func (s *Server) load(gen uint64) (*loadedView, error) {
	if err := faultinject.Fire("serve.reload.open"); err != nil {
		return nil, err
	}
	m, err := bicomp.OpenMapped(s.viewPath)
	if err != nil {
		return nil, err
	}
	lv := &loadedView{
		handle: bicomp.NewHandle(m, gen),
		g:      m.View.G,
		ids:    m.IDs,
		ranker: query.NewRankerView(m.View),
		loaded: time.Now(),
	}
	// The betweenness preprocessing is the expensive derived state; building
	// it here (not lazily) means no query ever pays it. With the view file's
	// out-reach section the O(n+m) NewOutReach DP is skipped too.
	lv.ranker.Prepare(query.Betweenness)
	if lv.ids != nil {
		lv.back = make(map[int64]graph.Node, len(lv.ids))
		for dense, raw := range lv.ids {
			lv.back[raw] = graph.Node(dense)
		}
	}
	return lv, nil
}

// Reload maps the view file afresh as the next generation and swaps it in.
// The old generation keeps serving its in-flight queries and is unmapped
// when the last of them drains (bicomp.Handle). Queries arriving during the
// swap land on whichever generation their Acquire wins — each response
// reports which one. On error the current view keeps serving untouched.
func (s *Server) Reload() (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	reloadStart := time.Now()
	old := s.cur.Load()
	lv, err := s.load(old.gen() + 1)
	if err != nil {
		s.m.reloadFailures.Inc()
		return old.gen(), fmt.Errorf("serve: reload failed, generation %d keeps serving: %w", old.gen(), err)
	}
	if !s.cfg.DisablePrecompute {
		// Warm the new generation before exposing it, so /v1/topk never
		// stalls across a reload.
		s.precomputeTopK(lv)
	}
	s.cur.Store(lv)
	old.handle.Retire()
	s.cache.purgeOtherGens(lv.gen())
	s.m.reloads.Inc()
	s.m.reloadSeconds.Observe(time.Since(reloadStart))
	return lv.gen(), nil
}

// acquire pins the current generation for one request. A tiny retry loop
// covers the window where a reload retires the handle between the pointer
// read and the Acquire.
func (s *Server) acquire() (*loadedView, error) {
	for i := 0; i < 1000; i++ {
		lv := s.cur.Load()
		if lv == nil {
			return nil, errors.New("serve: no view loaded")
		}
		if lv.handle.Acquire() {
			return lv, nil
		}
	}
	return nil, errors.New("serve: could not pin a view generation")
}

// buildQuery assembles the canonical query.Query for one request: server
// defaults applied, original-id targets translated to dense nodes, and the
// result validated through the shared Query.Validate — the serving layer
// has no canonicalization or parameter rules of its own. topk requests
// carry no targets: the empty canonical target set IS the whole-network
// query, and Query.Key distinguishes it from any explicit set.
func (s *Server) buildQuery(lv *loadedView, method string, targets []int64, eps, delta float64, k int, seed int64, topk bool) (query.Query, error) {
	m, err := measureOf(method)
	if err != nil {
		return query.Query{}, err
	}
	if eps == 0 {
		eps = s.cfg.DefaultEpsilon
	}
	if delta == 0 {
		delta = s.cfg.DefaultDelta
	}
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	if m == query.KPath && k == 0 {
		k = s.cfg.DefaultK
	}
	q := query.Query{Measure: m, K: k, Epsilon: eps, Delta: delta, Seed: seed}
	if !topk {
		if len(targets) == 0 {
			return q, params.Errorf("targets", "empty target set")
		}
		dense := make([]graph.Node, len(targets))
		for i, raw := range targets {
			v, ok := lv.dense(raw)
			if !ok {
				return q, params.Errorf("targets", "node %d not present in the served view", raw)
			}
			dense[i] = v
		}
		q.Targets = dense
	}
	q = q.Canonical()
	if err := q.Validate(lv.g.NumNodes()); err != nil {
		return q, err
	}
	return q, nil
}

// queryCost estimates the compute mass of q for admission classing: the
// sample-space footprint of the target set (Σ degree + |T|; the whole graph
// for an empty set) scaled by the quadratic sample-count dependence on
// epsilon, the same cost-model idiom sched.Bounds applies to chunks. The
// estimate only needs to be monotone enough to separate "tiny" from
// "expensive" — it never reaches a result bit.
func queryCost(lv *loadedView, q query.Query) float64 {
	var mass float64
	if len(q.Targets) == 0 {
		mass = float64(2*lv.g.NumEdges() + int64(lv.g.NumNodes()))
	} else {
		for _, t := range q.Targets {
			mass += float64(lv.g.Degree(t))
		}
		mass += float64(len(q.Targets))
	}
	eps := q.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	r := 0.05 / eps
	return mass * r * r
}

// lookup runs q through the cache, computing on a miss under admission
// control and the worker budget. The computation runs on a detached flight
// goroutine holding its own view pin (handle.Share), so it may outlive this
// request — ctx abandoning the flight never leaves the engines on unmapped
// pages. Tiny queries (queryCost at most FastLaneCost) are admitted through
// the fast lane when it has a free slot.
func (s *Server) lookup(ctx context.Context, lv *loadedView, q query.Query) (*payload, bool, error) {
	cost := queryCost(lv, q)
	if h := s.m.costFor(q.Measure); h != nil {
		h.ObserveN(int64(cost))
	}
	tiny := cost <= s.cfg.FastLaneCost
	ctx, cacheSpan := obs.StartSpan(ctx, "cache")
	ck := cacheKey{gen: lv.gen(), key: q.Key()}
	// The extra reference is donated to the (possible) flight; if this call
	// does not end up leading one, it is returned below.
	lv.handle.Share()
	p, led, err := s.cache.do(ctx, ck, func(fctx context.Context) (*payload, error) {
		defer lv.handle.Release() // the flight owns the donated reference
		fctx, flightSpan := obs.StartSpan(fctx, "flight")
		defer flightSpan.End()
		// Peer fill runs before admission: adopting a peer's cached bytes
		// needs no compute slot, and because it runs inside the flight a
		// cold key costs at most one peer round-trip no matter how many
		// requests collapse onto it. The adopted payload is cached exactly
		// as a computed one would be (cache.run inserts on success).
		if s.cfg.PeerFill != nil {
			fillSpan := obs.StartLeaf(fctx, "peerfill")
			resp, ok := s.cfg.PeerFill(fctx, ck.gen, ck.key)
			p, err := adoptPeerResponse(resp, ok, ck.gen)
			if fillSpan != nil {
				if p != nil {
					fillSpan.SetNote("hit")
				}
				fillSpan.End()
			}
			if err != nil {
				s.m.peerFillRejected.Inc()
			} else if p != nil {
				s.m.peerFillHits.Inc()
				return p, nil
			} else {
				s.m.peerFillMisses.Inc()
			}
		}
		admSpan := obs.StartLeaf(fctx, "admission")
		enterStart := time.Now()
		release, fast, err := s.adm.enter(fctx, tiny)
		s.m.queueWait.Observe(time.Since(enterStart))
		if admSpan != nil {
			if fast {
				admSpan.SetNote("fastlane")
			}
			admSpan.End()
		}
		if err != nil {
			return nil, err
		}
		defer release()
		// A fast-lane computation runs with one guaranteed worker instead of
		// waiting on the shared budget: with every shared slot busy the pool
		// is typically drained too, and a reserved admission slot that then
		// parks on Budget.Acquire would bound nothing. Tiny queries lose no
		// meaningful parallelism, and the worker count never reaches the
		// bits, so the lane's result is identical either way.
		granted := 1
		if !fast {
			granted = s.budget.AcquireCtx(fctx, 0)
			defer s.budget.Release(granted)
		}
		start := time.Now()
		cctx, computeSpan := obs.StartSpan(fctx, "compute")
		p, err := s.compute(cctx, lv, q, granted)
		computeSpan.End()
		if err == nil {
			d := time.Since(start)
			s.observeCompute(d)
			s.m.computeSeconds.Observe(d)
		}
		return p, err
	})
	if cacheSpan != nil {
		switch {
		case err != nil:
			cacheSpan.SetNote("error")
		case led:
			cacheSpan.SetNote("miss")
		default:
			cacheSpan.SetNote("hit")
		}
		cacheSpan.End()
	}
	if !led {
		lv.handle.Release()
	}
	return p, led, err
}

// adoptPeerResponse validates a peer's cache entry before this server
// adopts it as its own: the generation must be the one this flight is
// computing for (a peer mid-rollout may serve another generation; adopting
// it would poison the (gen, key) line), and the ranking arrays must be
// aligned and non-empty. ok=false (a clean peer miss) returns (nil, nil);
// a malformed or wrong-generation response returns an error so the caller
// can count it — either way the flight falls through to the local engines.
func adoptPeerResponse(resp *RankResponse, ok bool, gen uint64) (*payload, error) {
	if !ok || resp == nil {
		return nil, nil
	}
	if resp.Generation != gen {
		return nil, fmt.Errorf("serve: peer fill generation %d, want %d", resp.Generation, gen)
	}
	n := len(resp.Nodes)
	if n == 0 || len(resp.Scores) != n || len(resp.Ranks) != n || resp.Samples < 0 {
		return nil, fmt.Errorf("serve: peer fill arrays misaligned (%d nodes, %d scores, %d ranks)",
			n, len(resp.Scores), len(resp.Ranks))
	}
	return &payload{
		nodes:   resp.Nodes,
		scores:  resp.Scores,
		ranks:   resp.Ranks,
		samples: resp.Samples,
		adopted: true,
	}, nil
}

// observeCompute folds one successful compute duration into the EWMA behind
// the Retry-After derivation. Alpha 1/8: a few requests move it, one outlier
// does not.
func (s *Server) observeCompute(d time.Duration) {
	sec := d.Seconds()
	for {
		old := s.computeEWMA.Load()
		cur := math.Float64frombits(old)
		next := sec
		if old != 0 {
			next = cur + (sec-cur)/8
		}
		if s.computeEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds derives the 429 Retry-After hint from live state: the
// backlog ahead of a new arrival (queued plus running computations) times
// the mean compute time, spread over the compute slots — an estimate of when
// the queue will have drained enough to admit it. Clamped to [1, 60] so a
// cold EWMA still backs clients off and a deep queue cannot park them for
// minutes.
func (s *Server) retryAfterSeconds() int {
	ewma := math.Float64frombits(s.computeEWMA.Load())
	backlog := float64(s.adm.waitingNow() + int64(s.adm.inFlight()))
	sec := int(math.Ceil(ewma * backlog / float64(s.cfg.MaxInFlight)))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// compute runs the engines for q with the granted worker count. The worker
// count affects latency only, never bits (DESIGN.md section 3), so the
// grant does not appear in the cache key.
func (s *Server) compute(ctx context.Context, lv *loadedView, q query.Query, workers int) (*payload, error) {
	// Chaos hooks: serve.compute covers every computation (slow/panic/fail);
	// serve.compute.full fires only for whole-network jobs, so the fault
	// harness can saturate the shared pool without touching the fast lane.
	if err := faultinject.Fire("serve.compute"); err != nil {
		return nil, err
	}
	if len(q.Targets) == 0 {
		if err := faultinject.Fire("serve.compute.full"); err != nil {
			return nil, err
		}
	}
	q.Workers = workers
	res, err := lv.ranker.Rank(ctx, q)
	if err != nil {
		return nil, err
	}
	p := &payload{
		nodes:   make([]int64, len(res.Nodes)),
		scores:  res.Scores,
		ranks:   res.Rank,
		samples: res.Samples,
	}
	for i, v := range res.Nodes {
		p.nodes[i] = lv.original(v)
	}
	if len(q.Targets) == 0 {
		// Whole-network query backing the top-k index: store rank-ordered.
		return sortByRank(p), nil
	}
	return p, nil
}

// sortByRank reorders a full-network payload by rank (1 = most central), so
// /v1/topk responses are prefix slices. Ranks is a permutation (ties broken
// by node id in rank.Ranks), so the order is total.
func sortByRank(p *payload) *payload {
	order := make([]int, len(p.ranks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.ranks[order[a]] < p.ranks[order[b]] })
	out := &payload{
		nodes:   make([]int64, len(order)),
		scores:  make([]float64, len(order)),
		ranks:   make([]int, len(order)),
		samples: p.samples,
	}
	for i, j := range order {
		out.nodes[i] = p.nodes[j]
		out.scores[i] = p.scores[j]
		out.ranks[i] = p.ranks[j]
	}
	return out
}

// precomputeTopK warms the full-network ranking of every method with the
// configured default options, so the first /v1/topk of a fresh generation
// is already a cache hit. The three methods warm concurrently — admission
// control and the worker budget arbitrate the slots exactly as they do for
// requests (a reload-time warmup competes with live traffic), and the
// warmup — the most expensive queries the server runs — takes the time of
// the slowest method, not the sum. Warmups carry no deadline (they are an
// investment, not a request); failures are non-fatal: the index is then
// built lazily.
func (s *Server) precomputeTopK(lv *loadedView) {
	var wg sync.WaitGroup
	for _, m := range methods {
		q, err := s.buildQuery(lv, m, nil, 0, 0, 0, 0, true)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.lookup(context.Background(), lv, q)
		}()
	}
	wg.Wait()
}

// ---- HTTP layer ----

// RankRequest is the body of POST /v1/rank. Targets are original node ids
// (the id space of the edge list the view was built from). Zero-valued
// fields take the server's configured defaults. A compute deadline can be
// tightened per request with the Timeout-Ms header (it never extends the
// server default); on expiry the response is 504 and the computation is
// canceled once no other request waits on it.
type RankRequest struct {
	Method  string  `json:"method"`
	Targets []int64 `json:"targets"`
	Eps     float64 `json:"eps,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	K       int     `json:"k,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// RankResponse is the body of POST /v1/rank and GET /v1/topk responses.
// Nodes/Scores/Ranks are aligned; for /v1/topk they arrive ordered by rank.
// Generation identifies the view the scores were computed on; Cached
// reports whether the result was served without computing (LRU hit or
// collapsed onto a concurrent identical request).
type RankResponse struct {
	Generation uint64    `json:"generation"`
	Method     string    `json:"method"`
	Eps        float64   `json:"eps"`
	Delta      float64   `json:"delta"`
	K          int       `json:"k,omitempty"`
	Seed       int64     `json:"seed"`
	Cached     bool      `json:"cached"`
	Samples    int64     `json:"samples"`
	Nodes      []int64   `json:"nodes"`
	Scores     []float64 `json:"scores"`
	Ranks      []int     `json:"ranks"`

	// Degraded marks a response served through the degradation ladder
	// (Degrade-Ms opt-in) instead of the request's exact contract: either a
	// coarsened-eps recompute — Eps then reports the achieved epsilon, not
	// the requested one — or a prior-generation cache hit, with Generation
	// reporting the generation actually served. A degraded result is still
	// bitwise-deterministic for its own (generation, eps) contract.
	Degraded bool `json:"degraded,omitempty"`

	// Trace is the request's span tree, present only when the client asked
	// for it (?trace=1 or a Trace-Id header). Purely observational — the
	// ranking fields are bitwise-identical with and without it.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// maxRankBody bounds a /v1/rank request body (16 MiB ≈ several hundred
// thousand JSON-encoded targets): the body is decoded before any
// validation, so without a cap one request could allocate without bound.
const maxRankBody = 16 << 20

// requestCtx derives the compute context for one request: the HTTP request
// context (canceled on client disconnect) plus the deadline from the
// Timeout-Ms header and the server default. The header may only *tighten*
// the operator's bound — with a DefaultTimeout configured, the effective
// deadline is min(header, default), so a client cannot pin compute slots
// past the operator's limit; without one, the header alone applies. Values
// large enough to overflow the nanosecond representation are clamped, not
// wrapped. The returned cancel must always be called.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if faultinject.Fire("serve.request.expire") != nil {
		// Chaos hook: the request arrives effectively pre-expired, the
		// shape of a deadline firing between admission and compute.
		d = time.Nanosecond
	}
	if h := r.Header.Get("Timeout-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, params.Errorf("Timeout-Ms", "must be a positive integer, got %q", h)
		}
		hd := time.Duration(math.MaxInt64) // effectively unbounded
		if ms <= int64(hd/time.Millisecond) {
			hd = time.Duration(ms) * time.Millisecond
		}
		if d == 0 || hd < d {
			d = hd
		}
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(r.Context())
	return ctx, cancel, nil
}

// clientID identifies the requester for quota accounting: the Client-Id
// header, or the shared anonymous bucket when absent.
func clientID(r *http.Request) string {
	if id := r.Header.Get("Client-Id"); id != "" {
		return id
	}
	return "anonymous"
}

// checkQuota spends one token from the requester's bucket, writing the 429
// (with the exact token-refill Retry-After) itself when the bucket is
// drained. Reports whether the request may proceed.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	ok, wait := s.quota.take(clientID(r))
	if ok {
		return true
	}
	s.m.quotaDenied.Inc()
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error": fmt.Sprintf("serve: quota exhausted for client %q", clientID(r)),
	})
	return false
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.m.ranks.Inc()
	s.serveTimed(w, r, "rank", s.rankRequest)
}

// rankRequest is the POST /v1/rank body handler, returning the request's
// outcome label for the per-outcome latency histogram.
func (s *Server) rankRequest(w http.ResponseWriter, r *http.Request, st *reqState) string {
	var req RankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRankBody)).Decode(&req); err != nil {
		return s.fail(w, params.Errorf("body", "bad JSON: %v", err))
	}
	st.method = req.Method
	if !s.quotaSpanned(w, r) {
		return outcomeQuota
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		return s.fail(w, err)
	}
	defer cancel()
	lv, err := s.acquire()
	if err != nil {
		return s.fail(w, err)
	}
	defer lv.handle.Release()
	st.gen = lv.gen()
	q, err := s.buildQuery(lv, req.Method, req.Targets, req.Eps, req.Delta, req.K, req.Seed, false)
	if err != nil {
		return s.fail(w, err)
	}
	st.key, st.hasKey = q.Key(), true
	p, led, err := s.lookup(ctx, lv, q)
	if err != nil {
		if resp := s.tryDegrade(r, lv, req.Method, q, err); resp != nil {
			st.attachTrace(resp)
			writeJSON(w, http.StatusOK, resp)
			return outcomeDegraded
		}
		return s.fail(w, err)
	}
	resp := rankResponse(lv.gen(), req.Method, q, p, !led)
	st.attachTrace(resp)
	writeJSON(w, http.StatusOK, resp)
	return outcomeOK
}

// quotaSpanned is checkQuota under a "quota" span.
func (s *Server) quotaSpanned(w http.ResponseWriter, r *http.Request) bool {
	sp := obs.StartLeaf(r.Context(), "quota")
	ok := s.checkQuota(w, r)
	if sp != nil {
		if !ok {
			sp.SetNote("denied")
		}
		sp.End()
	}
	return ok
}

// degradable reports whether an error is the kind the degradation ladder
// rescues: shed load and expired deadlines. A vanished client (bare
// context.Canceled) gets nothing — nobody is listening.
func degradable(err error) bool {
	if errors.Is(err, errOverloaded) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	return false
}

// degradeBudget returns the request's degradation opt-in: the Degrade-Ms
// header when present and valid, the operator's DefaultDegradeMs policy
// otherwise. Zero means no opt-in.
func (s *Server) degradeBudget(r *http.Request) time.Duration {
	if h := r.Header.Get("Degrade-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return 0
		}
		return time.Duration(ms) * time.Millisecond
	}
	return time.Duration(s.cfg.DefaultDegradeMs) * time.Millisecond
}

// tryDegrade walks the degradation ladder for a request whose exact answer
// failed with a degradable error. Rungs, cheapest first:
//
//  1. stale — the same query key answered by the last retired generation,
//     free (no admission, no compute);
//  2. coarse — a recompute at min(eps*DegradeEpsFactor, DegradeMaxEps)
//     under the Degrade-Ms budget. The coarsened query is a DIFFERENT query
//     with its own Query.Key: it lands in (and may be served from) its own
//     cache line, so the bitwise-determinism contract is untouched — no key
//     ever maps to two payloads.
//
// Returns nil when the ladder has nothing to offer; the caller then fails
// with the original error.
func (s *Server) tryDegrade(r *http.Request, lv *loadedView, method string, q query.Query, cause error) *RankResponse {
	if !degradable(cause) {
		return nil
	}
	budget := s.degradeBudget(r)
	if budget <= 0 {
		return nil
	}
	if !s.cfg.DisableStale {
		staleSpan := obs.StartLeaf(r.Context(), "degrade.stale")
		gen, p, ok := s.cache.staleGet(q.Key())
		staleSpan.End()
		if ok {
			s.m.staleServed.Inc()
			resp := rankResponse(gen, method, q, p, true)
			resp.Degraded = true
			return resp
		}
	}
	ceps := math.Min(q.Epsilon*s.cfg.DegradeEpsFactor, s.cfg.DegradeMaxEps)
	if ceps <= q.Epsilon {
		return nil // already coarser than the ladder's floor
	}
	cq := q
	cq.Epsilon = ceps
	cq = cq.Canonical()
	// The degraded attempt runs under its own deadline derived from the
	// live connection — the original request context has typically already
	// expired.
	dctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	dctx, coarseSpan := obs.StartSpan(dctx, "degrade.coarse")
	p, led, err := s.lookup(dctx, lv, cq)
	coarseSpan.End()
	if err != nil {
		return nil
	}
	s.m.degraded.Inc()
	resp := rankResponse(lv.gen(), method, cq, p, !led)
	resp.Degraded = true
	return resp
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.m.topks.Inc()
	s.serveTimed(w, r, "topk", s.topkRequest)
}

// topkRequest is the GET /v1/topk handler, returning the outcome label.
func (s *Server) topkRequest(w http.ResponseWriter, r *http.Request, st *reqState) string {
	if !s.quotaSpanned(w, r) {
		return outcomeQuota
	}
	qs := r.URL.Query()
	k, err := queryInt(qs.Get("k"), 10)
	if err != nil {
		return s.fail(w, params.Errorf("k", "%v", err))
	}
	if k < 1 {
		return s.fail(w, params.Errorf("k", "must be >= 1, got %d", k))
	}
	eps, err1 := queryFloat(qs.Get("eps"))
	delta, err2 := queryFloat(qs.Get("delta"))
	seed, err3 := queryInt64(qs.Get("seed"))
	walkK, err4 := queryInt(qs.Get("walk_k"), 0)
	if err := errors.Join(err1, err2, err3, err4); err != nil {
		return s.fail(w, params.Errorf("query", "%v", err))
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		return s.fail(w, err)
	}
	defer cancel()
	lv, err := s.acquire()
	if err != nil {
		return s.fail(w, err)
	}
	defer lv.handle.Release()
	st.gen = lv.gen()
	method := qs.Get("method")
	if method == "" {
		method = MethodSaPHyRa
	}
	st.method = method
	q, err := s.buildQuery(lv, method, nil, eps, delta, walkK, seed, true)
	if err != nil {
		return s.fail(w, err)
	}
	st.key, st.hasKey = q.Key(), true
	p, led, err := s.lookup(ctx, lv, q)
	if err != nil {
		if resp := s.tryDegrade(r, lv, method, q, err); resp != nil {
			if k < len(resp.Nodes) {
				resp.Nodes, resp.Scores, resp.Ranks = resp.Nodes[:k], resp.Scores[:k], resp.Ranks[:k]
			}
			st.attachTrace(resp)
			writeJSON(w, http.StatusOK, resp)
			return outcomeDegraded
		}
		return s.fail(w, err)
	}
	if k > len(p.nodes) {
		k = len(p.nodes)
	}
	top := &payload{nodes: p.nodes[:k], scores: p.scores[:k], ranks: p.ranks[:k], samples: p.samples}
	resp := rankResponse(lv.gen(), method, q, top, !led)
	st.attachTrace(resp)
	writeJSON(w, http.StatusOK, resp)
	return outcomeOK
}

func rankResponse(gen uint64, method string, q query.Query, p *payload, cached bool) *RankResponse {
	// A payload adopted from a peer's cache was served, not computed, even
	// when this request led the flight — clients (and hit-rate accounting)
	// see a cache answer either way.
	cached = cached || p.adopted
	return &RankResponse{
		Generation: gen,
		Method:     method,
		Eps:        q.Epsilon,
		Delta:      q.Delta,
		K:          q.K,
		Seed:       q.Seed,
		Cached:     cached,
		Samples:    p.samples,
		Nodes:      p.nodes,
		Scores:     p.scores,
		Ranks:      p.ranks,
	}
}

// handleHealthz is LIVENESS: 200 from the moment the mux answers, no
// matter what is (or is not) loaded — a router restarts a live-but-stuck
// process on /healthz, it routes traffic on /readyz. The split matters
// during startup and botched reloads: a process relinking its view must
// not be killed for being temporarily unservable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok"}
	if lv := s.cur.Load(); lv != nil {
		resp["generation"] = lv.gen()
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReadyzResponse is the GET /readyz body. Generation is the view the
// replica currently serves — the rollout driver gates each step on it.
type ReadyzResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation,omitempty"`
}

// handleReadyz is READINESS: 503 until a view generation is loaded and
// servable. A failed reload keeps readiness green — the old generation
// still answers every query (Reload swaps only on success).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	lv := s.cur.Load()
	if lv == nil {
		writeJSON(w, http.StatusServiceUnavailable, &ReadyzResponse{Status: "loading"})
		return
	}
	writeJSON(w, http.StatusOK, &ReadyzResponse{Status: "ready", Generation: lv.gen()})
}

// Statusz is the GET /statusz body: operational counters for dashboards
// and the serving tests.
type Statusz struct {
	Generation     uint64    `json:"generation"`
	View           string    `json:"view"`
	Nodes          int       `json:"nodes"`
	Edges          int64     `json:"edges"`
	LoadedAt       time.Time `json:"loaded_at"`
	UptimeSeconds  float64   `json:"uptime_seconds"`
	InFlight       int       `json:"inflight"`
	Waiting        int64     `json:"waiting"`
	WorkersTotal   int       `json:"workers_total"`
	WorkersPerCall int       `json:"workers_per_request"`
	Cache          struct {
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Collapsed int64 `json:"collapsed"`
	} `json:"cache"`
	Requests struct {
		Rank             int64 `json:"rank"`
		TopK             int64 `json:"topk"`
		BadRequest       int64 `json:"bad_request"`
		Shed             int64 `json:"shed"`
		QuotaDenied      int64 `json:"quota_denied"`
		DeadlineExceeded int64 `json:"deadline_exceeded"`
		Canceled         int64 `json:"canceled"`
		InternalErrors   int64 `json:"internal_errors"`
	} `json:"requests"`
	// Degraded counts coarsened-eps responses, StaleServed prior-generation
	// cache responses (both flagged degraded on the wire); FastLaneAdmits
	// counts computations admitted through the tiny-query fast lane.
	Degraded       int64 `json:"degraded"`
	StaleServed    int64 `json:"stale_served"`
	FastLaneAdmits int64 `json:"fastlane_admits"`
	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reload_failures"`
	// OpenMappings is the process-wide count of live mmapped views — the
	// refcount-leak canary (steady state: one per retained generation).
	OpenMappings int64 `json:"open_mappings"`
}

func (s *Server) statusz() (*Statusz, error) {
	lv, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer lv.handle.Release()
	st := &Statusz{
		Generation:     lv.gen(),
		View:           s.viewPath,
		Nodes:          lv.g.NumNodes(),
		Edges:          lv.g.NumEdges(),
		LoadedAt:       lv.loaded,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		InFlight:       s.adm.inFlight(),
		Waiting:        s.adm.waitingNow(),
		WorkersTotal:   s.cfg.TotalWorkers,
		WorkersPerCall: s.cfg.RequestWorkers,
		Reloads:        s.m.reloads.Value(),
	}
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	st.Cache.Hits = s.cache.hits.Load()
	st.Cache.Misses = s.cache.misses.Load()
	st.Cache.Collapsed = s.cache.collapsed.Load()
	st.Requests.Rank = s.m.ranks.Value()
	st.Requests.TopK = s.m.topks.Value()
	st.Requests.BadRequest = s.m.badRequests.Value()
	st.Requests.Shed = s.m.shed.Value()
	st.Requests.QuotaDenied = s.m.quotaDenied.Value()
	st.Requests.DeadlineExceeded = s.m.deadlines.Value()
	st.Requests.Canceled = s.m.canceled.Value()
	st.Requests.InternalErrors = s.m.internalErrors.Value()
	st.Degraded = s.m.degraded.Value()
	st.StaleServed = s.m.staleServed.Value()
	st.FastLaneAdmits = s.adm.fastAdmits()
	st.ReloadFailures = s.m.reloadFailures.Value()
	st.OpenMappings = bicomp.OpenMappings()
	return st, nil
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st, err := s.statusz()
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetricsz renders the obs.Registry in the Prometheus text
// exposition format: every counter family the pre-registry handler
// emitted (same names and labels), the operational gauges — now including
// the compute EWMA and queue depth behind Retry-After — and the latency /
// cost histograms with `_bucket` series plus companion quantile gauges.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.m.reg.WritePrometheus(w)
}

// Registry exposes the server's metrics registry (for embedding servers
// that surface their own /metricsz, and for the exposition tests).
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// ReloadResponse is the POST /admin/reload body. Generation reports the
// generation now serving: the NEW one on success, the RETAINED one on
// failure (a failed reload never unseats the current view). The rollout
// driver (internal/cluster) gates each step of a rolling reload on the
// success generation instead of polling /statusz.
type ReloadResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	gen, err := s.Reload()
	if err != nil {
		s.m.internalErrors.Inc()
		writeJSON(w, http.StatusInternalServerError, &ReloadResponse{
			Status: "failed", Generation: gen, Error: err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, &ReloadResponse{Status: "reloaded", Generation: gen})
}

// handleInternalCache is GET /internal/cache?gen=&key=: the peer side of
// the cluster cache-fill tier. It answers purely from the local LRU
// (cache.peek — no flight join, no computation, no recency or counter
// side effects), 404 on a miss, so a probing peer can fall through to its
// own engines immediately. The body is the canonical RankResponse
// envelope; only the ranking payload fields are populated — the requester
// knows its own method and options, and validates generation and shape
// before adopting (adoptPeerResponse).
func (s *Server) handleInternalCache(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	gen, err := strconv.ParseUint(qs.Get("gen"), 10, 64)
	if err != nil {
		s.m.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "gen: must be a uint64"})
		return
	}
	raw, err := hex.DecodeString(qs.Get("key"))
	if err != nil || len(raw) != sha256.Size {
		s.m.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("key: want %d hex chars", 2*sha256.Size),
		})
		return
	}
	ck := cacheKey{gen: gen}
	copy(ck.key[:], raw)
	p, ok := s.cache.peek(ck)
	if !ok {
		s.m.internalCacheMisses.Inc()
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "serve: not cached"})
		return
	}
	s.m.internalCacheHits.Inc()
	writeJSON(w, http.StatusOK, &RankResponse{
		Generation: gen,
		Cached:     true,
		Samples:    p.samples,
		Nodes:      p.nodes,
		Scores:     p.scores,
		Ranks:      p.ranks,
	})
}

// StatusClientClosedRequest is the nginx-convention status for a request
// abandoned by its client before the response was ready (context canceled
// without a deadline). There is no standard constant; 499 is the de facto
// one.
const StatusClientClosedRequest = 499

// fail classifies err and writes the matching status: typed parameter
// errors are the caller's fault (400), shed load is 429 with a Retry-After
// hint, a deadline expiry is 504, a client disconnect 499, anything else a
// 500. Returns the outcome label for the per-outcome latency histogram.
func (s *Server) fail(w http.ResponseWriter, err error) string {
	switch {
	case params.IsBadInput(err):
		s.m.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return outcomeBadRequest
	case errors.Is(err, errOverloaded):
		s.m.shed.Inc()
		// The hint is derived from live queue depth and the compute-time
		// EWMA — an estimate of when the backlog will have drained — not a
		// constant: under light overload clients come back quickly, under a
		// deep queue they stay away proportionally longer.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
		return outcomeShed
	case params.IsCanceled(err), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if errors.Is(err, context.DeadlineExceeded) {
			s.m.deadlines.Inc()
			writeJSON(w, http.StatusGatewayTimeout, map[string]any{"error": err.Error()})
			return outcomeDeadline
		}
		s.m.canceled.Inc()
		writeJSON(w, StatusClientClosedRequest, map[string]any{"error": err.Error()})
		return outcomeClientClosed
	default:
		s.m.internalErrors.Inc()
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return outcomeInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func queryInt64(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func queryFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// ---- admission control ----

var errOverloaded = errors.New("serve: overloaded, try again later")

// admission bounds concurrently running computations with a bounded wait
// queue plus a reserved fast lane: slots hold the shared run capacity,
// fast holds slots only tiny queries may take, waiting counts computations
// blocked on a shared slot, and arrivals beyond maxWait are shed immediately
// — the queue never grows without bound, so p99 under overload stays the
// service time of the queue, not of the backlog.
//
// The lanes are asymmetric by design: a tiny query tries the fast lane
// first and falls back to the shared pool (it is never worse off than
// before the lane existed), while an expensive query never touches the fast
// lane — the reservation is what bounds tiny-query latency when
// full-network jobs saturate the shared pool.
type admission struct {
	slots    chan struct{}
	fast     chan struct{} // nil when the lane is disabled
	waiting  atomic.Int64
	maxWait  int64
	fastHits atomic.Int64
}

func newAdmission(inFlight, maxWait, fastSlots int) *admission {
	a := &admission{slots: make(chan struct{}, inFlight), maxWait: int64(maxWait)}
	for i := 0; i < inFlight; i++ {
		a.slots <- struct{}{}
	}
	if fastSlots > 0 {
		a.fast = make(chan struct{}, fastSlots)
		for i := 0; i < fastSlots; i++ {
			a.fast <- struct{}{}
		}
	}
	return a
}

// enter blocks for a compute slot until ctx is done, returning the release
// for the slot it took and whether the grant came from the fast lane: a
// canceled flight leaves the wait queue immediately (freeing its queue
// position), so deadline-exceeded requests never hold admission state for
// work that will not run. The release closes over the lane, so a fast-lane
// grant can never be returned to the shared pool or vice versa.
func (a *admission) enter(ctx context.Context, tiny bool) (release func(), fast bool, err error) {
	if tiny && a.fast != nil {
		select {
		case <-a.fast:
			a.fastHits.Add(1)
			return func() { a.fast <- struct{}{} }, true, nil
		default: // fast lane busy: fall through to the shared pool
		}
	}
	releaseShared := func() { a.slots <- struct{}{} }
	select {
	case <-a.slots:
		return releaseShared, false, nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		return nil, false, errOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case <-a.slots:
		return releaseShared, false, nil
	case <-ctx.Done():
		return nil, false, &params.CanceledError{Cause: context.Cause(ctx)}
	}
}

func (a *admission) inFlight() int {
	n := cap(a.slots) - len(a.slots)
	if a.fast != nil {
		n += cap(a.fast) - len(a.fast)
	}
	return n
}
func (a *admission) waitingNow() int64 { return a.waiting.Load() }
func (a *admission) fastAdmits() int64 { return a.fastHits.Load() }
