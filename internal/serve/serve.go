// Package serve is the ranking service layer over a persisted BlockCSR
// view: the request lifecycle behind cmd/saphyrad (DESIGN.md section 8).
// It owns everything between an HTTP request and an engine call —
//
//   - validation: request parameters funnel through internal/params, whose
//     typed errors split 400 (caller fault) from 500 (server fault);
//   - admission control: at most MaxInFlight computations run at once with a
//     bounded wait queue; excess load is shed immediately with 429 instead
//     of queueing without bound;
//   - a per-request worker budget (sched.Budget): each computation is
//     granted a bounded share of a fixed worker-slot pool, so one
//     full-network query cannot starve concurrent subset queries — safe to
//     do opportunistically because results never depend on the worker count;
//   - a deterministic result cache with singleflight collapsing, keyed by
//     (view generation, method, canonicalized options, canonical target-set
//     hash) — sound because every estimate is a pure function of exactly
//     those inputs (see cacheKey);
//   - a top-k index per method: the full-network ranking computed once per
//     (generation, options), cached, and sliced by GET /v1/topk;
//   - atomic hot reload: POST /admin/reload (or SIGHUP in the daemon) maps
//     the view file afresh under the next generation, swaps it in, and
//     retires the old bicomp.Handle — which unmaps only after the last
//     in-flight query on it drains, per the mmap lifetime rules of
//     DESIGN.md section 7.
//
// The API surface is JSON over HTTP: POST /v1/rank, GET /v1/topk,
// GET /healthz, GET /statusz, POST /admin/reload.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"saphyra"
	"saphyra/internal/bicomp"
	"saphyra/internal/closeness"
	"saphyra/internal/core"
	"saphyra/internal/graph"
	"saphyra/internal/kpath"
	"saphyra/internal/params"
	"saphyra/internal/rank"
	"saphyra/internal/sched"
)

// Config tunes the service. The zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently running computations (cache misses).
	// Cache hits bypass admission entirely. Default 4.
	MaxInFlight int
	// MaxQueue bounds computations waiting for an in-flight slot; arrivals
	// beyond it are shed with 429. Default 4*MaxInFlight.
	MaxQueue int
	// TotalWorkers is the worker-slot pool shared by every computation.
	// Default GOMAXPROCS.
	TotalWorkers int
	// RequestWorkers caps the slots one computation may take from the pool
	// (the per-request budget). Default max(1, TotalWorkers/2).
	RequestWorkers int
	// CacheEntries bounds the result cache. Default 1024.
	CacheEntries int

	// Request defaults, applied when a field is absent from the request.
	DefaultEpsilon float64 // default 0.05
	DefaultDelta   float64 // default 0.01
	DefaultSeed    int64   // default 1
	DefaultK       int     // k-path walk length, default 3

	// DisablePrecompute skips warming the per-method top-k index at load
	// and reload time; the index is then built lazily by the first
	// /v1/topk request per method.
	DisablePrecompute bool
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RequestWorkers <= 0 {
		c.RequestWorkers = max(1, c.TotalWorkers/2)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultEpsilon == 0 {
		c.DefaultEpsilon = 0.05
	}
	if c.DefaultDelta == 0 {
		c.DefaultDelta = 0.01
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.DefaultK == 0 {
		c.DefaultK = 3
	}
}

// Methods served over HTTP. "saphyra" is betweenness (SaPHyRa_bc); the two
// companion estimators complete the persisted view's consumer set.
const (
	MethodSaPHyRa   = "saphyra"
	MethodKPath     = "kpath"
	MethodCloseness = "closeness"
)

var methods = []string{MethodSaPHyRa, MethodKPath, MethodCloseness}

// loadedView is one generation of the serving state: the mapped view with
// its lifetime handle plus everything derived from it once per load — the
// betweenness preprocessing (decomposition, out-reach, exact-phase engine)
// and the original-id -> dense-id reverse map.
type loadedView struct {
	handle *bicomp.Handle
	view   *bicomp.BlockCSR
	g      *graph.Graph
	ids    []int64              // dense -> original; nil = identity
	back   map[int64]graph.Node // original -> dense; nil = identity
	prep   *core.BCPreprocessed
	loaded time.Time
}

func (lv *loadedView) gen() uint64 { return lv.handle.Gen() }

// dense maps an original id to its dense node, reporting existence.
func (lv *loadedView) dense(raw int64) (graph.Node, bool) {
	if lv.back == nil {
		return graph.Node(raw), raw >= 0 && raw < int64(lv.g.NumNodes())
	}
	v, ok := lv.back[raw]
	return v, ok
}

// original maps a dense node back to its original id.
func (lv *loadedView) original(v graph.Node) int64 {
	if lv.ids == nil {
		return int64(v)
	}
	return lv.ids[v]
}

// Server is the ranking service. Create with New, expose via Handler, hot
// reload with Reload, shut down with Close.
type Server struct {
	cfg      Config
	viewPath string

	cur      atomic.Pointer[loadedView]
	reloadMu sync.Mutex // serializes Reload; swaps stay atomic for readers

	cache  *cache
	budget *sched.Budget
	adm    *admission
	mux    *http.ServeMux
	start  time.Time

	ranks, topks, reloads, badRequests, internalErrors, shed atomic.Int64
}

// New maps the view file, runs the per-process preprocessing, warms the
// top-k index (unless disabled), and returns a Server ready to accept
// requests as generation 1.
func New(viewPath string, cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:      cfg,
		viewPath: viewPath,
		cache:    newCache(cfg.CacheEntries),
		budget:   sched.NewBudget(cfg.TotalWorkers, cfg.RequestWorkers),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		start:    time.Now(),
	}
	lv, err := s.load(1)
	if err != nil {
		return nil, err
	}
	s.cur.Store(lv)
	if !cfg.DisablePrecompute {
		s.precomputeTopK(lv)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/rank", s.handleRank)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	return s, nil
}

// Handler returns the HTTP handler for the JSON API.
func (s *Server) Handler() http.Handler { return s.mux }

// Generation returns the current view generation.
func (s *Server) Generation() uint64 { return s.cur.Load().gen() }

// Close retires the current view; in-flight queries drain before the
// mapping is released. The server must not serve requests afterwards.
func (s *Server) Close() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if lv := s.cur.Load(); lv != nil {
		lv.handle.Retire()
	}
	return nil
}

// load maps viewPath and builds the per-generation derived state.
func (s *Server) load(gen uint64) (*loadedView, error) {
	m, err := bicomp.OpenMapped(s.viewPath)
	if err != nil {
		return nil, err
	}
	lv := &loadedView{
		handle: bicomp.NewHandle(m, gen),
		view:   m.View,
		g:      m.View.G,
		ids:    m.IDs,
		loaded: time.Now(),
	}
	// The betweenness preprocessing is the expensive derived state; doing
	// it here (not lazily) means no query ever pays it. With the view
	// file's out-reach section the O(n+m) NewOutReach DP is skipped too.
	lv.prep = core.PreprocessBCFromView(m.View)
	if lv.ids != nil {
		lv.back = make(map[int64]graph.Node, len(lv.ids))
		for dense, raw := range lv.ids {
			lv.back[raw] = graph.Node(dense)
		}
	}
	return lv, nil
}

// Reload maps the view file afresh as the next generation and swaps it in.
// The old generation keeps serving its in-flight queries and is unmapped
// when the last of them drains (bicomp.Handle). Queries arriving during the
// swap land on whichever generation their Acquire wins — each response
// reports which one. On error the current view keeps serving untouched.
func (s *Server) Reload() (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.cur.Load()
	lv, err := s.load(old.gen() + 1)
	if err != nil {
		return old.gen(), fmt.Errorf("serve: reload failed, generation %d keeps serving: %w", old.gen(), err)
	}
	if !s.cfg.DisablePrecompute {
		// Warm the new generation before exposing it, so /v1/topk never
		// stalls across a reload.
		s.precomputeTopK(lv)
	}
	s.cur.Store(lv)
	old.handle.Retire()
	s.cache.purgeOtherGens(lv.gen())
	s.reloads.Add(1)
	return lv.gen(), nil
}

// acquire pins the current generation for one request. A tiny retry loop
// covers the window where a reload retires the handle between the pointer
// read and the Acquire.
func (s *Server) acquire() (*loadedView, error) {
	for i := 0; i < 1000; i++ {
		lv := s.cur.Load()
		if lv == nil {
			return nil, errors.New("serve: no view loaded")
		}
		if lv.handle.Acquire() {
			return lv, nil
		}
	}
	return nil, errors.New("serve: could not pin a view generation")
}

// query is a fully validated, canonicalized request: the unit the cache key
// is derived from.
type query struct {
	method string
	topk   bool
	k      int // kpath only; 0 otherwise
	eps    float64
	delta  float64
	seed   int64
	dense  []graph.Node // canonical (sorted, deduplicated) dense targets; nil for topk
}

func (s *Server) canonicalize(lv *loadedView, method string, targets []int64, eps, delta float64, k int, seed int64, topk bool) (query, error) {
	q := query{method: method, topk: topk}
	switch method {
	case MethodSaPHyRa, MethodCloseness:
	case MethodKPath:
		if k == 0 {
			k = s.cfg.DefaultK
		}
		if err := params.CheckK(k); err != nil {
			return q, err
		}
		q.k = k
	default:
		return q, params.Errorf("method", "unknown method %q (want saphyra | kpath | closeness)", method)
	}
	if eps == 0 {
		eps = s.cfg.DefaultEpsilon
	}
	if delta == 0 {
		delta = s.cfg.DefaultDelta
	}
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	// Options canonicalization is the library's (saphyra.Options.Canonical):
	// equal canonical forms guarantee bitwise-equal results, which is the
	// precondition for using them in the cache key.
	opt := saphyra.Options{Epsilon: eps, Delta: delta, Seed: seed}.Canonical()
	if err := params.CheckEpsDelta(opt.Epsilon, opt.Delta); err != nil {
		return q, err
	}
	q.eps, q.delta, q.seed = opt.Epsilon, opt.Delta, opt.Seed
	if topk {
		return q, nil
	}
	if len(targets) == 0 {
		return q, params.Errorf("targets", "empty target set")
	}
	dense := make([]graph.Node, len(targets))
	for i, raw := range targets {
		v, ok := lv.dense(raw)
		if !ok {
			return q, params.Errorf("targets", "node %d not present in the served view", raw)
		}
		dense[i] = v
	}
	q.dense = graph.DedupSorted(dense)
	return q, nil
}

func (q query) key(gen uint64) cacheKey {
	key := cacheKey{
		gen: gen, method: q.method, topk: q.topk,
		k: q.k, eps: q.eps, delta: q.delta, seed: q.seed,
	}
	if !q.topk {
		key.hash = saphyra.TargetSetHash(q.dense)
		key.count = len(q.dense)
	}
	return key
}

// lookup runs q through the cache, computing on a miss under admission
// control and the worker budget.
func (s *Server) lookup(lv *loadedView, q query) (*payload, bool, error) {
	return s.cache.do(q.key(lv.gen()), func() (*payload, error) {
		if err := s.adm.enter(); err != nil {
			return nil, err
		}
		defer s.adm.leave()
		granted := s.budget.Acquire(0)
		defer s.budget.Release(granted)
		return s.compute(lv, q, granted)
	})
}

// compute runs the engine for q with the granted worker count. The worker
// count affects latency only, never bits (DESIGN.md section 3), so the
// grant does not appear in the cache key.
func (s *Server) compute(lv *loadedView, q query, workers int) (*payload, error) {
	dense := q.dense
	if q.topk {
		dense = make([]graph.Node, lv.g.NumNodes())
		for i := range dense {
			dense[i] = graph.Node(i)
		}
	}
	var (
		scores  []float64
		samples int64
	)
	switch q.method {
	case MethodSaPHyRa:
		res, err := lv.prep.EstimateBC(dense, core.BCOptions{
			Epsilon: q.eps, Delta: q.delta, Workers: workers, Seed: q.seed,
		})
		if err != nil {
			return nil, err
		}
		scores = res.BC
		if res.Est != nil {
			samples = res.Est.Samples
		}
	case MethodKPath:
		res, err := kpath.EstimateView(lv.view, dense, kpath.Options{
			K: q.k, Epsilon: q.eps, Delta: q.delta, Workers: workers, Seed: q.seed,
		})
		if err != nil {
			return nil, err
		}
		scores, samples = res.KPath, res.Est.Samples
	case MethodCloseness:
		res, err := closeness.EstimateView(lv.view, dense, closeness.Options{
			Epsilon: q.eps, Delta: q.delta, Workers: workers, Seed: q.seed,
		})
		if err != nil {
			return nil, err
		}
		scores, samples = res.Closeness, res.Samples
	default:
		return nil, params.Errorf("method", "unknown method %q", q.method)
	}

	ids32 := make([]int32, len(dense))
	for i, v := range dense {
		ids32[i] = int32(v)
	}
	ranks := rank.Ranks(scores, ids32)
	p := &payload{
		nodes:   make([]int64, len(dense)),
		scores:  scores,
		ranks:   ranks,
		samples: samples,
	}
	for i, v := range dense {
		p.nodes[i] = lv.original(v)
	}
	if q.topk {
		return sortByRank(p), nil
	}
	return p, nil
}

// sortByRank reorders a full-network payload by rank (1 = most central), so
// /v1/topk responses are prefix slices. Ranks is a permutation (ties broken
// by node id in rank.Ranks), so the order is total.
func sortByRank(p *payload) *payload {
	order := make([]int, len(p.ranks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.ranks[order[a]] < p.ranks[order[b]] })
	out := &payload{
		nodes:   make([]int64, len(order)),
		scores:  make([]float64, len(order)),
		ranks:   make([]int, len(order)),
		samples: p.samples,
	}
	for i, j := range order {
		out.nodes[i] = p.nodes[j]
		out.scores[i] = p.scores[j]
		out.ranks[i] = p.ranks[j]
	}
	return out
}

// precomputeTopK warms the full-network ranking of every method with the
// configured default options, so the first /v1/topk of a fresh generation
// is already a cache hit. The three methods warm concurrently — admission
// control and the worker budget arbitrate the slots exactly as they do for
// requests (a reload-time warmup competes with live traffic), and the
// warmup — the most expensive queries the server runs — takes the time of
// the slowest method, not the sum. Failures are non-fatal: the index is
// then built lazily.
func (s *Server) precomputeTopK(lv *loadedView) {
	var wg sync.WaitGroup
	for _, m := range methods {
		q, err := s.canonicalize(lv, m, nil, 0, 0, 0, 0, true)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.lookup(lv, q)
		}()
	}
	wg.Wait()
}

// ---- HTTP layer ----

// RankRequest is the body of POST /v1/rank. Targets are original node ids
// (the id space of the edge list the view was built from). Zero-valued
// fields take the server's configured defaults.
type RankRequest struct {
	Method  string  `json:"method"`
	Targets []int64 `json:"targets"`
	Eps     float64 `json:"eps,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	K       int     `json:"k,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// RankResponse is the body of POST /v1/rank and GET /v1/topk responses.
// Nodes/Scores/Ranks are aligned; for /v1/topk they arrive ordered by rank.
// Generation identifies the view the scores were computed on; Cached
// reports whether the result was served without computing (LRU hit or
// collapsed onto a concurrent identical request).
type RankResponse struct {
	Generation uint64    `json:"generation"`
	Method     string    `json:"method"`
	Eps        float64   `json:"eps"`
	Delta      float64   `json:"delta"`
	K          int       `json:"k,omitempty"`
	Seed       int64     `json:"seed"`
	Cached     bool      `json:"cached"`
	Samples    int64     `json:"samples"`
	Nodes      []int64   `json:"nodes"`
	Scores     []float64 `json:"scores"`
	Ranks      []int     `json:"ranks"`
}

// maxRankBody bounds a /v1/rank request body (16 MiB ≈ several hundred
// thousand JSON-encoded targets): the body is decoded before any
// validation, so without a cap one request could allocate without bound.
const maxRankBody = 16 << 20

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.ranks.Add(1)
	var req RankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRankBody)).Decode(&req); err != nil {
		s.fail(w, params.Errorf("body", "bad JSON: %v", err))
		return
	}
	lv, err := s.acquire()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer lv.handle.Release()
	q, err := s.canonicalize(lv, req.Method, req.Targets, req.Eps, req.Delta, req.K, req.Seed, false)
	if err != nil {
		s.fail(w, err)
		return
	}
	p, computed, err := s.lookup(lv, q)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rankResponse(lv.gen(), q, p, !computed))
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.topks.Add(1)
	qs := r.URL.Query()
	k, err := queryInt(qs.Get("k"), 10)
	if err != nil {
		s.fail(w, params.Errorf("k", "%v", err))
		return
	}
	if k < 1 {
		s.fail(w, params.Errorf("k", "must be >= 1, got %d", k))
		return
	}
	eps, err1 := queryFloat(qs.Get("eps"))
	delta, err2 := queryFloat(qs.Get("delta"))
	seed, err3 := queryInt64(qs.Get("seed"))
	walkK, err4 := queryInt(qs.Get("walk_k"), 0)
	if err := errors.Join(err1, err2, err3, err4); err != nil {
		s.fail(w, params.Errorf("query", "%v", err))
		return
	}
	lv, err := s.acquire()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer lv.handle.Release()
	method := qs.Get("method")
	if method == "" {
		method = MethodSaPHyRa
	}
	q, err := s.canonicalize(lv, method, nil, eps, delta, walkK, seed, true)
	if err != nil {
		s.fail(w, err)
		return
	}
	p, computed, err := s.lookup(lv, q)
	if err != nil {
		s.fail(w, err)
		return
	}
	if k > len(p.nodes) {
		k = len(p.nodes)
	}
	top := &payload{nodes: p.nodes[:k], scores: p.scores[:k], ranks: p.ranks[:k], samples: p.samples}
	writeJSON(w, http.StatusOK, rankResponse(lv.gen(), q, top, !computed))
}

func rankResponse(gen uint64, q query, p *payload, cached bool) *RankResponse {
	return &RankResponse{
		Generation: gen,
		Method:     q.method,
		Eps:        q.eps,
		Delta:      q.delta,
		K:          q.k,
		Seed:       q.seed,
		Cached:     cached,
		Samples:    p.samples,
		Nodes:      p.nodes,
		Scores:     p.scores,
		Ranks:      p.ranks,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	lv := s.cur.Load()
	if lv == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "loading"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "generation": lv.gen()})
}

// Statusz is the GET /statusz body: operational counters for dashboards
// and the serving tests.
type Statusz struct {
	Generation     uint64    `json:"generation"`
	View           string    `json:"view"`
	Nodes          int       `json:"nodes"`
	Edges          int64     `json:"edges"`
	LoadedAt       time.Time `json:"loaded_at"`
	UptimeSeconds  float64   `json:"uptime_seconds"`
	InFlight       int       `json:"inflight"`
	Waiting        int64     `json:"waiting"`
	WorkersTotal   int       `json:"workers_total"`
	WorkersPerCall int       `json:"workers_per_request"`
	Cache          struct {
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Collapsed int64 `json:"collapsed"`
	} `json:"cache"`
	Requests struct {
		Rank           int64 `json:"rank"`
		TopK           int64 `json:"topk"`
		BadRequest     int64 `json:"bad_request"`
		Shed           int64 `json:"shed"`
		InternalErrors int64 `json:"internal_errors"`
	} `json:"requests"`
	Reloads int64 `json:"reloads"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	lv, err := s.acquire()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer lv.handle.Release()
	st := Statusz{
		Generation:     lv.gen(),
		View:           s.viewPath,
		Nodes:          lv.g.NumNodes(),
		Edges:          lv.g.NumEdges(),
		LoadedAt:       lv.loaded,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		InFlight:       s.adm.inFlight(),
		Waiting:        s.adm.waitingNow(),
		WorkersTotal:   s.cfg.TotalWorkers,
		WorkersPerCall: s.cfg.RequestWorkers,
		Reloads:        s.reloads.Load(),
	}
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	st.Cache.Hits = s.cache.hits.Load()
	st.Cache.Misses = s.cache.misses.Load()
	st.Cache.Collapsed = s.cache.collapsed.Load()
	st.Requests.Rank = s.ranks.Load()
	st.Requests.TopK = s.topks.Load()
	st.Requests.BadRequest = s.badRequests.Load()
	st.Requests.Shed = s.shed.Load()
	st.Requests.InternalErrors = s.internalErrors.Load()
	writeJSON(w, http.StatusOK, &st)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	gen, err := s.Reload()
	if err != nil {
		s.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(), "generation": gen,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "generation": gen})
}

// fail classifies err and writes the matching status: typed parameter
// errors are the caller's fault (400), shed load is 429 with a Retry-After
// hint, anything else is a 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case params.IsBadInput(err):
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
	case errors.Is(err, errOverloaded):
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
	default:
		s.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func queryInt64(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func queryFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// ---- admission control ----

var errOverloaded = errors.New("serve: overloaded, try again later")

// admission bounds concurrently running computations with a bounded wait
// queue: slots hold the run capacity, waiting counts computations blocked
// on a slot, and arrivals beyond maxWait are shed immediately — the queue
// never grows without bound, so p99 under overload stays the service time
// of the queue, not of the backlog.
type admission struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newAdmission(inFlight, maxWait int) *admission {
	a := &admission{slots: make(chan struct{}, inFlight), maxWait: int64(maxWait)}
	for i := 0; i < inFlight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

func (a *admission) enter() error {
	select {
	case <-a.slots:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		return errOverloaded
	}
	defer a.waiting.Add(-1)
	<-a.slots
	return nil
}

func (a *admission) leave() { a.slots <- struct{}{} }

func (a *admission) inFlight() int     { return cap(a.slots) - len(a.slots) }
func (a *admission) waitingNow() int64 { return a.waiting.Load() }
