// Package faultinject is a registry of named, test-gated failure points —
// the substrate of the serving layer's chaos tests (DESIGN.md section 10).
//
// Production code marks the places where the outside world can fail (a slow
// computation, an mmap that errors, a reload that dies mid-swap, a panic on
// a flight goroutine) with a single call:
//
//	if err := faultinject.Fire("bicomp.openmapped"); err != nil {
//	    return nil, err
//	}
//
// With the package disabled — the default, and the only state production
// ever runs in — Fire is one atomic load and a nil return; no map lookup,
// no allocation, no lock. Tests call Enable, arm points with Set, and every
// Fire of an armed point then applies its Fault: an optional delay, an
// optional panic, an optional returned error, gated by an optional firing
// probability and a firing-count cap.
//
// Points are identified by convention as "package.site[.detail]". The
// registry is process-global on purpose: the code under test must not need
// plumbing to reach its failure points, and the chaos harness arms the
// whole process at once. Tests that arm points must not run in parallel
// with tests that assume a quiet registry; the repository keeps all
// fault-armed tests in packages already serialized by the -race CI list.
package faultinject

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed point does when it fires.
type Fault struct {
	// Err is returned by Fire when the fault fires (nil for delay- or
	// panic-only faults).
	Err error
	// Delay is slept before Fire returns (fired or not: the sleep happens
	// only when the probability gate passes).
	Delay time.Duration
	// Panic, when non-empty, makes Fire panic with this value — the
	// flight-panic fault. Delay (if any) is applied first.
	Panic string
	// Prob gates each Fire: the fault fires with this probability. Values
	// <= 0 or >= 1 mean "always". The draws come from a per-point PCG
	// seeded by Seed, so a chaos run is reproducible.
	Prob float64
	// Seed seeds the probability stream (only meaningful with a
	// fractional Prob). Zero means seed 1.
	Seed int64
	// Times caps how often the fault fires; 0 means no cap. Once the cap
	// is reached the point stays armed but inert (Hits keeps counting
	// passes through the gate).
	Times int64
}

// point is the armed state behind one name.
type point struct {
	mu    sync.Mutex
	fault Fault
	rng   *rand.Rand
	fired int64
	hits  atomic.Int64 // Fire calls that found the point armed
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  sync.Map // name -> *point
)

// Enable opens the global gate: armed points start firing. Intended for
// tests only.
func Enable() { enabled.Store(true) }

// Disable closes the global gate; armed points stay registered but Fire
// returns nil immediately.
func Disable() { enabled.Store(false) }

// Enabled reports whether the global gate is open.
func Enabled() bool { return enabled.Load() }

// Set arms (or re-arms, resetting counters) the named point.
func Set(name string, f Fault) {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	p := &point{fault: f, rng: rand.New(rand.NewPCG(uint64(seed), 0x5bf0_3635))}
	points.Store(name, p)
}

// Clear disarms the named point.
func Clear(name string) { points.Delete(name) }

// Reset disarms every point and closes the gate — the test-teardown call.
func Reset() {
	enabled.Store(false)
	points.Range(func(k, _ any) bool {
		points.Delete(k)
		return true
	})
}

// Hits returns how many times the named point was reached while armed and
// enabled (whether or not the probability gate fired it).
func Hits(name string) int64 {
	v, ok := points.Load(name)
	if !ok {
		return 0
	}
	return v.(*point).hits.Load()
}

// Fired returns how many times the named point actually fired.
func Fired(name string) int64 {
	v, ok := points.Load(name)
	if !ok {
		return 0
	}
	p := v.(*point)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Fire is the instrumentation call sites use. Disabled (the production
// state) it is one atomic load returning nil. Enabled, it applies the armed
// Fault for name — sleeping Delay, panicking with Panic, returning Err —
// or returns nil when the point is unarmed, the probability gate passes, or
// the firing cap is exhausted.
func Fire(name string) error {
	if !enabled.Load() {
		return nil
	}
	v, ok := points.Load(name)
	if !ok {
		return nil
	}
	p := v.(*point)
	p.hits.Add(1)
	p.mu.Lock()
	f := p.fault
	if f.Times > 0 && p.fired >= f.Times {
		p.mu.Unlock()
		return nil
	}
	if f.Prob > 0 && f.Prob < 1 && p.rng.Float64() >= f.Prob {
		p.mu.Unlock()
		return nil
	}
	p.fired++
	p.mu.Unlock()
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic("faultinject: " + name + ": " + f.Panic)
	}
	return f.Err
}
