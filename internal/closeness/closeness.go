// Package closeness implements subset ranking by harmonic closeness
// centrality, the first of the paper's stated future-work extensions of the
// SaPHyRa framework (Section VI).
//
// Harmonic closeness of v is c(v) = (1/(n-1)) * sum_{u != v} 1/d(u, v)
// (terms with unreachable u are 0). A sample is a uniform source u; the
// per-hypothesis loss for target v is 1/d(u, v) in [0, 1] -- a bounded but
// non-binary loss, so this package runs its own progressive estimator with
// empirical Bernstein stopping (per-target variance) instead of the 0/1
// framework plumbing. One BFS per sample prices all targets at once, which
// is what makes subset ranking cheap.
package closeness

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"saphyra/internal/graph"
	"saphyra/internal/stats"
)

// Options configures the estimator.
type Options struct {
	Epsilon    float64 // additive error; default 0.05
	Delta      float64 // failure probability; default 0.01
	Workers    int
	Seed       int64
	MaxSamples int64 // optional cap; default 64/eps^2 * ln-scaled ceiling
}

func (o *Options) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result holds harmonic closeness estimates for the target set.
type Result struct {
	Nodes        []graph.Node
	Closeness    []float64
	Samples      int64
	Rounds       int
	StoppedEarly bool
}

// Estimate computes (eps, delta)-estimates of harmonic closeness for the
// targets by source sampling.
func Estimate(g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	opt.setDefaults()
	if len(a) == 0 {
		return nil, errors.New("closeness: empty target set")
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, errors.New("closeness: graph too small")
	}
	nodes := dedupSorted(a)
	k := len(nodes)
	eps, delta := opt.Epsilon, opt.Delta
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, errors.New("closeness: epsilon and delta must be in (0,1)")
	}

	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.UnionSampleSize(eps, delta, k) * 4
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
		if n0 > nmax {
			n0 = nmax
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	deltaI := delta / (2 * float64(rounds) * float64(k))

	res := &Result{Nodes: nodes}
	accs := make([]stats.MeanVar, k)
	var drawn int64
	target := n0
	workers := opt.Workers
	rngs := make([]*rand.Rand, workers)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(opt.Seed + int64(w+1)*612_361))
	}
	for {
		res.Rounds++
		batchParallel(g, nodes, rngs, target-drawn, accs)
		drawn = target
		worst := 0.0
		for i := range accs {
			if e := stats.EpsilonBernstein(drawn, deltaI, accs[i].Variance()); e > worst {
				worst = e
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.Closeness = make([]float64, k)
	for i := range accs {
		res.Closeness[i] = accs[i].Mean()
	}
	return res, nil
}

func batchParallel(g *graph.Graph, nodes []graph.Node, rngs []*rand.Rand, count int64, accs []stats.MeanVar) {
	if count <= 0 {
		return
	}
	workers := len(rngs)
	n := g.NumNodes()
	locals := make([][]stats.MeanVar, workers)
	var wg sync.WaitGroup
	base := count / int64(workers)
	rem := count % int64(workers)
	for w := 0; w < workers; w++ {
		quota := base
		if int64(w) < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, quota int64) {
			defer wg.Done()
			local := make([]stats.MeanVar, len(nodes))
			dist := make([]int32, n)
			for j := int64(0); j < quota; j++ {
				u := graph.Node(rngs[w].Intn(n))
				dist = graph.BFSDistances(g, u, dist)
				for i, v := range nodes {
					x := 0.0
					if v != u && dist[v] > 0 {
						x = 1 / float64(dist[v])
					}
					local[i].Add(x)
				}
			}
			locals[w] = local
		}(w, quota)
	}
	wg.Wait()
	for _, local := range locals {
		if local == nil {
			continue
		}
		for i := range accs {
			accs[i].Merge(&local[i])
		}
	}
}

// Exact computes exact harmonic closeness for every node: c(v) =
// sum_{u != v} (1/d(u,v)) / (n-1), one BFS per node. O(n*m).
func Exact(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int32, n)
	for u := 0; u < n; u++ {
		dist = graph.BFSDistances(g, graph.Node(u), dist)
		for v, d := range dist {
			if v != u && d > 0 {
				out[v] += 1 / float64(d)
			}
		}
	}
	for i := range out {
		out[i] /= float64(n - 1)
	}
	return out
}

func dedupSorted(a []graph.Node) []graph.Node {
	out := make([]graph.Node, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
